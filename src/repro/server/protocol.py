"""The serving layer's wire protocol.

A connection carries a sequence of *frames*, each a 4-byte big-endian
length prefix followed by a body. Request bodies are always UTF-8 JSON;
response bodies are JSON by default, or the compact *columnar* format
when the request asked for it (see below). Requests are objects with an
``op`` field:

``{"op": "query", "sql": "...", "id": "q1", "timeout": 2.5}``
    Execute one SQL statement. ``id`` (optional) names the query so it
    can be cancelled from another connection; ``timeout`` (optional,
    seconds) overrides the server's default deadline.
``{"op": "ping"}``
    Liveness probe; answered immediately, never queued.
``{"op": "stats"}``
    Server counters, latency histogram, cache statistics and catalog.
``{"op": "cancel", "id": "q1"}``
    Best-effort cancellation of an in-flight query by its ``id``.

Responses always carry ``ok``. Successful queries reply
``{"ok": true, "rows": [...], "elapsed": seconds, "cached": bool}``;
failures reply a structured error frame
``{"ok": false, "error": {"code": ..., "status": ..., "message": ...}}``
modelled on HTTP status classes (``busy`` -> 503, ``timeout`` -> 408,
query and protocol errors -> 400, ``cancelled`` -> 499) so clients can
distinguish back-pressure from bad requests without string matching.

Columnar responses
------------------

A request may carry ``"accept": ["columnar"]``. When it does — and the
result rows form a rectangular table — the response body is encoded as
typed column arrays instead of row-oriented JSON::

    b"RCF1" | u32 header length | header JSON | column buffers...

The header is ``{"meta": {...}, "n_rows": N, "columns": [{"name",
"enc", "nbytes"}, ...]}`` where ``meta`` holds every response field
except ``rows``. ``enc`` is ``i8`` (little-endian int64), ``f8``
(little-endian IEEE float64, NaN/inf included — bit-exact, unlike
JSON) or ``json`` (a JSON array, the fallback for strings, bools,
None and mixed columns). Negotiation is best effort per request:
servers that predate the format ignore ``accept`` and answer JSON,
clients that never send it get JSON, and non-rectangular results fall
back to JSON even when columnar was asked for. :func:`decode_body`
dispatches on the magic (no JSON object can start with ``R``), so
either body decodes to the same response dict.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Any, BinaryIO

import numpy as np

from ..core.errors import ModelarError

#: Length prefix: one unsigned 32-bit big-endian integer.
HEADER = struct.Struct(">I")

#: Upper bound on a single frame; a prefix above this means the peer is
#: not speaking the protocol (or a result is unreasonably large).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Magic prefix of a columnar response body (version 1). A JSON body
#: always starts with ``{``, so the first byte disambiguates.
COLUMNAR_MAGIC = b"RCF1"

#: Wire-format names used in request ``accept`` lists.
WIRE_JSON = "json"
WIRE_COLUMNAR = "columnar"


# ----------------------------------------------------------------------
# Error codes (HTTP-style status classes)
# ----------------------------------------------------------------------
class ErrorCode:
    """Structured error codes carried in error frames."""

    BAD_REQUEST = "bad_request"  # malformed frame or unknown op
    QUERY = "query_error"        # SQL failed to parse/plan/execute
    BUSY = "busy"                # admission control rejected the query
    TIMEOUT = "timeout"          # the per-query deadline expired
    CANCELLED = "cancelled"      # an explicit cancel hit the query
    SHUTDOWN = "shutdown"        # the server is stopping
    INTERNAL = "internal"        # unexpected server-side failure
    CONNECTION = "connection"    # transport lost after client retries


#: HTTP-style status for each code (503 = back-pressure, retry later).
ERROR_STATUS = {
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.QUERY: 400,
    ErrorCode.BUSY: 503,
    ErrorCode.TIMEOUT: 408,
    ErrorCode.CANCELLED: 499,
    ErrorCode.SHUTDOWN: 503,
    ErrorCode.INTERNAL: 500,
    ErrorCode.CONNECTION: 503,
}


class ServerError(ModelarError):
    """A structured error returned by (or raised inside) the server."""

    code = ErrorCode.INTERNAL

    def __init__(self, message: str, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code

    @property
    def status(self) -> int:
        return ERROR_STATUS.get(self.code, 500)


class BusyError(ServerError):
    """Admission control fast-failed the request (503-style)."""

    code = ErrorCode.BUSY


class DeadlineError(ServerError):
    """The query's deadline expired before it finished."""

    code = ErrorCode.TIMEOUT


class CancelledError(ServerError):
    """The query was cancelled via the ``cancel`` op."""

    code = ErrorCode.CANCELLED


class RemoteQueryError(ServerError):
    """The SQL statement itself was rejected by the engine."""

    code = ErrorCode.QUERY


class BadRequestError(ServerError):
    """The frame was not a valid request."""

    code = ErrorCode.BAD_REQUEST


class ConnectionLostError(ServerError):
    """The transport failed and client-side retries were exhausted.

    Raised *client-side* by :class:`~repro.server.client.ServerClient`
    (never sent on the wire): a dropped connection surfaces as a typed,
    error-coded failure the load generator can tally under
    ``errors_by_code`` instead of a raw :class:`OSError` crashing the
    client loop. 503-style: the request may simply be retried later.
    """

    code = ErrorCode.CONNECTION


#: Client-side mapping from a received error code to the exception
#: raised by :class:`~repro.server.client.ServerClient`.
ERROR_CLASSES = {
    ErrorCode.BUSY: BusyError,
    ErrorCode.TIMEOUT: DeadlineError,
    ErrorCode.CANCELLED: CancelledError,
    ErrorCode.QUERY: RemoteQueryError,
    ErrorCode.BAD_REQUEST: BadRequestError,
    ErrorCode.SHUTDOWN: BusyError,
    ErrorCode.INTERNAL: ServerError,
    ErrorCode.CONNECTION: ConnectionLostError,
}


def raise_for_error(payload: dict[str, Any]) -> None:
    """Raise the matching :class:`ServerError` for an error response."""
    if payload.get("ok", False):
        return
    error = payload.get("error") or {}
    code = error.get("code", ErrorCode.INTERNAL)
    message = error.get("message", "unknown server error")
    raise ERROR_CLASSES.get(code, ServerError)(message, code=code)


def error_response(code: str, message: str) -> dict[str, Any]:
    """A structured error frame for ``code``."""
    return {
        "ok": False,
        "error": {
            "code": code,
            "status": ERROR_STATUS.get(code, 500),
            "message": message,
        },
    }


# ----------------------------------------------------------------------
# Frame encoding
# ----------------------------------------------------------------------
def _json_default(value: Any) -> Any:
    """Serialise numpy scalars (engine rows may carry them) by value."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"object of type {type(value).__name__} is not JSON serialisable"
    )


def encode_frame(payload: dict[str, Any]) -> bytes:
    """Length-prefix and serialise one JSON payload."""
    body = json.dumps(
        payload, separators=(",", ":"), default=_json_default
    ).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServerError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES} limit"
        )
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict[str, Any]:
    """Parse a frame body (JSON or columnar); raises
    :class:`BadRequestError` on junk."""
    if body.startswith(COLUMNAR_MAGIC):
        return _decode_columnar_body(body)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequestError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BadRequestError("frame must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# Columnar response encoding
# ----------------------------------------------------------------------
def negotiated_wire(request: dict[str, Any]) -> str:
    """The response wire format a request asked for (default JSON)."""
    accept = request.get("accept")
    if isinstance(accept, str):
        accept = (accept,)
    if isinstance(accept, (list, tuple)) and WIRE_COLUMNAR in accept:
        return WIRE_COLUMNAR
    return WIRE_JSON


def _column_encoding(values: list[Any]) -> str:
    """The tightest wire encoding holding every value of one column."""
    types = {type(value) for value in values}
    if types == {int}:
        # int64 covers every timestamp/Tid the engine produces; anything
        # wider falls back to exact JSON integers.
        if all(-(2 ** 63) <= value < 2 ** 63 for value in values):
            return "i8"
        return "json"
    if types == {float}:
        return "f8"
    return "json"


def encode_columns(
    rows: list[dict[str, Any]],
) -> tuple[list[dict[str, Any]], list[bytes]] | None:
    """Column descriptors and payload buffers for a rectangular result.

    Returns None when the rows do not form a rectangle (some row is not
    a dict, or key order differs) — the caller falls back to JSON.
    """
    if not rows:
        return [], []
    if not isinstance(rows[0], dict):
        return None
    names = list(rows[0].keys())
    for row in rows:
        if not isinstance(row, dict) or list(row.keys()) != names:
            return None
    columns: list[dict[str, Any]] = []
    buffers: list[bytes] = []
    for name in names:
        values = [row[name] for row in rows]
        encoding = _column_encoding(values)
        if encoding == "i8":
            buffer = np.asarray(values, dtype="<i8").tobytes()
        elif encoding == "f8":
            buffer = np.asarray(values, dtype="<f8").tobytes()
        else:
            buffer = json.dumps(
                values, separators=(",", ":"), default=_json_default
            ).encode("utf-8")
        columns.append(
            {"name": name, "enc": encoding, "nbytes": len(buffer)}
        )
        buffers.append(buffer)
    return columns, buffers


def encode_columnar_frame(payload: dict[str, Any]) -> bytes | None:
    """Length-prefix and columnar-encode one response, if possible.

    Returns None when the payload has no rectangular ``rows`` list or
    the encoded body would exceed the frame limit; the caller falls
    back to :func:`encode_frame`. When ``rows`` is a
    :class:`~repro.server.result_cache.CachedResult` the encoded
    columns are memoised on it, so a result-cache hit re-serialises to
    the exact same bytes without re-encoding.
    """
    rows = payload.get("rows")
    if not isinstance(rows, list):
        return None
    encoded = getattr(rows, "columnar_columns", None)
    if encoded is None:
        encoded = encode_columns(rows)
        if encoded is None:
            return None
        try:
            rows.columnar_columns = encoded  # type: ignore[attr-defined]
        except AttributeError:
            pass  # plain lists cannot memoise; CachedResult can
    columns, buffers = encoded
    meta = {key: value for key, value in payload.items() if key != "rows"}
    header = json.dumps(
        {"meta": meta, "n_rows": len(rows), "columns": columns},
        separators=(",", ":"),
        default=_json_default,
    ).encode("utf-8")
    body = b"".join(
        (COLUMNAR_MAGIC, HEADER.pack(len(header)), header, *buffers)
    )
    if len(body) > MAX_FRAME_BYTES:
        return None
    return HEADER.pack(len(body)) + body


def _decode_columnar_body(body: bytes) -> dict[str, Any]:
    """Decode a columnar body back into the response dict."""
    try:
        offset = len(COLUMNAR_MAGIC)
        (header_length,) = HEADER.unpack_from(body, offset)
        offset += HEADER.size
        header = json.loads(body[offset:offset + header_length].decode())
        offset += header_length
        n_rows = header["n_rows"]
        names = []
        column_values = []
        for column in header["columns"]:
            nbytes = column["nbytes"]
            buffer = body[offset:offset + nbytes]
            if len(buffer) != nbytes:
                raise ValueError("truncated column buffer")
            offset += nbytes
            encoding = column["enc"]
            if encoding == "i8":
                values = np.frombuffer(buffer, dtype="<i8").tolist()
            elif encoding == "f8":
                values = np.frombuffer(buffer, dtype="<f8").tolist()
            elif encoding == "json":
                values = json.loads(buffer.decode("utf-8"))
            else:
                raise ValueError(f"unknown column encoding {encoding!r}")
            if len(values) != n_rows:
                raise ValueError("column length disagrees with n_rows")
            names.append(column["name"])
            column_values.append(values)
        payload = dict(header["meta"])
        payload["rows"] = [
            {name: column_values[index][position]
             for index, name in enumerate(names)}
            for position in range(n_rows)
        ]
        return payload
    except (KeyError, TypeError, ValueError, AttributeError,
            UnicodeDecodeError, json.JSONDecodeError, struct.error) as exc:
        raise BadRequestError(f"malformed columnar frame: {exc}") from exc


async def read_frame(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame from an asyncio stream; None on clean EOF."""
    try:
        header = await reader.readexactly(HEADER.size)
    except (EOFError, ConnectionError, OSError):
        # asyncio.IncompleteReadError subclasses EOFError: a peer that
        # disconnects mid-header is treated as a clean EOF.
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BadRequestError(f"frame length {length} exceeds the limit")
    body = await reader.readexactly(length)
    return decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: dict[str, Any],
    wire: str = WIRE_JSON,
) -> str:
    """Write one frame to an asyncio stream and drain.

    ``wire`` is the *requested* response format; returns the format
    actually used (columnar falls back to JSON for non-rectangular
    payloads, so the caller can count real columnar responses).
    """
    frame = None
    used = WIRE_JSON
    if wire == WIRE_COLUMNAR:
        frame = encode_columnar_frame(payload)
        if frame is not None:
            used = WIRE_COLUMNAR
    if frame is None:
        frame = encode_frame(payload)
    writer.write(frame)
    await writer.drain()
    return used


# ----------------------------------------------------------------------
# Blocking (client-side) frame I/O
# ----------------------------------------------------------------------
def send_frame(sock: socket.socket | BinaryIO, payload: dict[str, Any]) -> None:
    """Blocking send of one frame over a socket or binary file."""
    data = encode_frame(payload)
    if isinstance(sock, socket.socket):
        sock.sendall(data)
    else:
        sock.write(data)
        sock.flush()


def _recv_exactly(sock: socket.socket, length: int) -> bytes | None:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Blocking receive of one frame; None on clean EOF."""
    header = _recv_exactly(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise BadRequestError(f"frame length {length} exceeds the limit")
    body = _recv_exactly(sock, length)
    if body is None:
        return None
    return decode_body(body)
