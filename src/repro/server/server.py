"""The concurrent query server (the Spark SQL front-end substitute).

An asyncio TCP server speaking the length-prefixed JSON protocol of
:mod:`repro.server.protocol`. Statements execute on a bounded thread
pool via a :class:`~repro.server.dispatcher.Dispatcher`; the event loop
itself never blocks on a query, so pings, stats and cancellations stay
responsive while the pool is saturated.

Admission control is two bounds deep, as the serving benchmarks of
SciTS (arXiv:2204.09795) argue a closed-loop harness needs:

* at most ``max_inflight`` statements execute concurrently (this is
  also the executor pool width);
* at most ``max_waiting`` more may queue for a slot;
* anything beyond that is *fast-failed* with a structured ``busy``
  error (503-style) instead of being queued unboundedly — the client
  learns about back-pressure in microseconds, never by hanging.

Every query gets a deadline (the server default unless the request
carries its own) wired to a cooperative :class:`CancelToken`; expiry
answers the client immediately with a ``timeout`` error while the token
tells the executor thread to abandon the work. The ``cancel`` op fires
the same token by query id from any connection.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from ..core.errors import ModelarError
from ..obs import get_registry
from .dispatcher import CancelToken, Dispatcher
from .metrics import LatencyHistogram, ServerCounters
from .protocol import (
    WIRE_COLUMNAR,
    BadRequestError,
    BusyError,
    ErrorCode,
    error_response,
    negotiated_wire,
    read_frame,
    write_frame,
)

_DEFAULT_TIMEOUT_SECONDS = 30.0


class QueryServer:
    """One serving endpoint over one dispatcher."""

    def __init__(
        self,
        dispatcher: Dispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 4,
        max_waiting: int = 16,
        default_timeout: float = _DEFAULT_TIMEOUT_SECONDS,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_waiting < 0:
            raise ValueError("max_waiting must be >= 0")
        self.dispatcher = dispatcher
        self._host = host
        self._port = port
        self._max_inflight = max_inflight
        self._max_waiting = max_waiting
        self._default_timeout = default_timeout
        self.counters = ServerCounters()
        self.latency = LatencyHistogram()
        self._query_seconds = get_registry().histogram(
            "server.query_seconds"
        )
        self._columnar_responses = get_registry().counter(
            "server.columnar_responses_total"
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max_inflight, thread_name_prefix="repro-query"
        )
        self._semaphore: asyncio.Semaphore | None = None
        self._waiting = 0
        self._inflight = 0
        self._cancel_tokens: dict[str, tuple[CancelToken, asyncio.Event]] = {}
        self._connection_tasks: set[asyncio.Task] = set()
        self._server: asyncio.base_events.Server | None = None
        self._closing = False

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound (port 0 resolves on start)."""
        return self._host, self._port

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        self._semaphore = asyncio.Semaphore(self._max_inflight)
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self._host, self._port = sockname[0], sockname[1]
        return self._host, self._port

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Stop accepting, fail over in-flight work, release the store."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for token, event in list(self._cancel_tokens.values()):
            token.cancel("shutdown")
            event.set()
        for task in list(self._connection_tasks):
            task.cancel()
        if self._connection_tasks:
            await asyncio.gather(
                *self._connection_tasks, return_exceptions=True
            )
        self._executor.shutdown(wait=False, cancel_futures=True)
        # The dispatcher owns the storage handle (FileStorage.close is
        # the deterministic release the restart tests rely on).
        self.dispatcher.close()

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connection_tasks.add(task)
        self.counters.bump("connections")
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except BadRequestError as error:
                    # Unframeable input may desynchronise the stream:
                    # report once, then drop the connection.
                    self.counters.bump("bad_requests")
                    await write_frame(
                        writer,
                        error_response(ErrorCode.BAD_REQUEST, str(error)),
                    )
                    break
                if request is None:
                    break
                response = await self._handle_request(request)
                try:
                    used = await write_frame(
                        writer, response, negotiated_wire(request)
                    )
                except (ConnectionError, OSError):
                    break
                if used == WIRE_COLUMNAR:
                    self._columnar_responses.inc()
        except asyncio.CancelledError:
            pass
        finally:
            self._connection_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _handle_request(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "stats":
            return {"ok": True, "stats": self.stats()}
        if op == "metrics":
            return {"ok": True, "metrics": self.dispatcher.metrics()}
        if op == "cancel":
            return self._handle_cancel(request)
        if op == "query":
            return await self._handle_query(request)
        self.counters.bump("bad_requests")
        return error_response(
            ErrorCode.BAD_REQUEST,
            f"unknown op {op!r}; expected query/ping/stats/metrics/cancel",
        )

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    def _handle_cancel(self, request: dict) -> dict:
        query_id = request.get("id")
        entry = (
            self._cancel_tokens.get(str(query_id))
            if query_id is not None
            else None
        )
        if entry is None:
            return {"ok": True, "cancelled": False}
        token, event = entry
        token.cancel("cancelled")
        event.set()
        return {"ok": True, "cancelled": True}

    async def _handle_query(self, request: dict) -> dict:
        self.counters.bump("requests")
        sql = request.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            self.counters.bump("bad_requests")
            return error_response(
                ErrorCode.BAD_REQUEST, "query op requires a 'sql' string"
            )
        timeout = request.get("timeout", self._default_timeout)
        if timeout is not None and (
            not isinstance(timeout, (int, float)) or timeout <= 0
        ):
            self.counters.bump("bad_requests")
            return error_response(
                ErrorCode.BAD_REQUEST, "'timeout' must be a positive number"
            )
        as_of = request.get("as_of")
        if as_of is not None and (
            not isinstance(as_of, int)
            or isinstance(as_of, bool)
            or as_of < 0
        ):
            self.counters.bump("bad_requests")
            return error_response(
                ErrorCode.BAD_REQUEST,
                "'as_of' must be a non-negative integer knowledge time",
            )
        query_id = request.get("id")

        try:
            await self._acquire_slot()
        except BusyError as error:
            self.counters.bump("rejected_busy")
            return error_response(error.code, str(error))
        self.counters.bump("accepted")

        token = CancelToken()
        cancelled_event = asyncio.Event()
        if query_id is not None:
            self._cancel_tokens[str(query_id)] = (token, cancelled_event)
        started = time.perf_counter()
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._executor, self.dispatcher.execute, sql, token, as_of
        )
        future.add_done_callback(self._release_slot)
        cancel_waiter = asyncio.ensure_future(cancelled_event.wait())
        try:
            done, _pending = await asyncio.wait(
                {future, cancel_waiter},
                timeout=timeout,
                return_when=asyncio.FIRST_COMPLETED,
            )
            if future in done:
                return self._finish_query(future, started)
            if cancel_waiter in done:
                self.counters.bump("cancelled")
                return error_response(
                    ErrorCode.CANCELLED, f"query {query_id!r} was cancelled"
                )
            # Deadline expired: answer now, tell the worker to abandon.
            token.cancel("timeout")
            self.counters.bump("timed_out")
            return error_response(
                ErrorCode.TIMEOUT,
                f"query exceeded its {timeout:.3f}s deadline",
            )
        finally:
            cancel_waiter.cancel()
            if query_id is not None:
                self._cancel_tokens.pop(str(query_id), None)

    def _finish_query(self, future, started: float) -> dict:
        try:
            rows, cached = future.result()
        except ModelarError as error:
            # SQL/engine errors are answered in-band; the connection
            # (and the server) stay up.
            self.counters.bump("failed")
            return error_response(ErrorCode.QUERY, str(error))
        except Exception as error:  # noqa: BLE001 - reported, not raised
            self.counters.bump("failed")
            return error_response(
                ErrorCode.INTERNAL, f"{type(error).__name__}: {error}"
            )
        elapsed = time.perf_counter() - started
        self.latency.record(elapsed)
        self._query_seconds.record(elapsed)
        self.counters.bump("completed")
        return {
            "ok": True,
            "rows": rows,
            "elapsed": elapsed,
            "cached": cached,
        }

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------
    async def _acquire_slot(self) -> None:
        if self._closing:
            raise BusyError(
                "server is shutting down", code=ErrorCode.SHUTDOWN
            )
        if self._semaphore.locked():
            if self._waiting >= self._max_waiting:
                raise BusyError(
                    f"{self._max_inflight} queries in flight and "
                    f"{self._waiting} waiting; retry later"
                )
            self.counters.bump("queued")
        self._waiting += 1
        try:
            await self._semaphore.acquire()
        finally:
            self._waiting -= 1
        self._inflight += 1

    def _release_slot(self, future) -> None:
        self._inflight -= 1
        self._semaphore.release()
        if not future.cancelled():
            # A result that raced past its deadline is discarded; pull
            # the exception so the loop never logs it as unretrieved.
            future.exception()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "counters": self.counters.snapshot(),
            "latency": self.latency.snapshot(),
            "admission": {
                "max_inflight": self._max_inflight,
                "max_waiting": self._max_waiting,
                "inflight": self._inflight,
                "waiting": self._waiting,
            },
            "dispatcher": self.dispatcher.stats(),
            "catalog": self.dispatcher.catalog(),
        }


class ServerThread:
    """Run a :class:`QueryServer` on a private background event loop.

    The synchronous harness used by tests, the load generator and the
    benchmark: ``start()`` returns the bound (host, port); ``stop()``
    shuts the server down and joins the loop thread.
    """

    def __init__(self, server: QueryServer) -> None:
        self._server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def start(self, timeout: float = 10.0) -> tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-server",
            daemon=True,
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            self._server.start(), self._loop
        )
        return future.result(timeout=timeout)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self._server.stop(), self._loop
        )
        future.result(timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop.close()
        self._loop = None

    def __enter__(self) -> tuple[str, int]:
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
