"""Closed-loop load generator for the query server.

``N`` client threads each hold one connection and issue the next
statement as soon as the previous response arrives (a closed loop, so
offered load adapts to server capacity — the harness shape the SciTS
benchmark, arXiv:2204.09795, uses for time-series servers). Latency is
measured client-side around each request; the report carries exact
p50/p95/p99 over all completed requests plus throughput, admission
rejections and server-side cache hits.

The statement mix comes from the paper's evaluation workloads
(:mod:`repro.workloads.queries`): S-AGG and L-AGG always, P/R when the
caller knows the data's time range.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..workloads.queries import l_agg, p_r, s_agg
from .client import ServerClient
from .protocol import ServerError

#: Back-off after a busy rejection, so a saturated closed loop does not
#: spin on the admission controller.
_BUSY_BACKOFF_SECONDS = 0.002


def build_workload(
    tids,
    start_time: int | None = None,
    end_time: int | None = None,
    sampling_interval: int | None = None,
    seed: int = 0,
) -> list[str]:
    """The mixed SQL statement list the load generator cycles over."""
    tids = list(tids)
    if not tids:
        raise ValueError("the workload needs at least one Tid")
    statements = [spec.to_sql() for spec in s_agg(tids, seed=seed).queries]
    statements += [spec.to_sql() for spec in l_agg().queries]
    if (
        start_time is not None
        and end_time is not None
        and sampling_interval
        and end_time > start_time
    ):
        statements += [
            spec.to_sql()
            for spec in p_r(
                tids, start_time, end_time, sampling_interval, seed=seed
            ).queries
        ]
    return statements


def percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an ascending list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(int(round(fraction * len(sorted_values) + 0.5)) - 1, 0)
    return sorted_values[min(rank, len(sorted_values) - 1)]


@dataclass
class LoadReport:
    """Aggregate outcome of one closed-loop run."""

    clients: int
    duration_seconds: float
    completed: int = 0
    rejected_busy: int = 0
    errors: int = 0
    cache_hits: int = 0
    latencies: list[float] = field(default_factory=list)
    #: Error responses per server error code; worker crashes count
    #: under "client-crash" so a dead client is never silent.
    errors_by_code: dict[str, int] = field(default_factory=dict)
    #: The first error observed across all clients, verbatim.
    first_error: str | None = None

    @property
    def throughput_qps(self) -> float:
        if self.duration_seconds <= 0:
            return 0.0
        return self.completed / self.duration_seconds

    def latency_ms(self, fraction: float) -> float:
        return percentile(sorted(self.latencies), fraction) * 1000.0

    def to_dict(self) -> dict:
        ordered = sorted(self.latencies)
        mean = (sum(ordered) / len(ordered) * 1000.0) if ordered else 0.0
        return {
            "clients": self.clients,
            "duration_s": round(self.duration_seconds, 3),
            "completed": self.completed,
            "rejected_busy": self.rejected_busy,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "throughput_qps": round(self.throughput_qps, 2),
            "latency_mean_ms": round(mean, 3),
            "latency_p50_ms": round(percentile(ordered, 0.50) * 1000, 3),
            "latency_p95_ms": round(percentile(ordered, 0.95) * 1000, 3),
            "latency_p99_ms": round(percentile(ordered, 0.99) * 1000, 3),
            "errors_by_code": dict(sorted(self.errors_by_code.items())),
            "first_error": self.first_error,
        }

    def summary(self) -> str:
        data = self.to_dict()
        text = (
            f"{data['clients']:>3} clients: "
            f"{data['throughput_qps']:>9.1f} q/s  "
            f"p50 {data['latency_p50_ms']:.2f} ms  "
            f"p95 {data['latency_p95_ms']:.2f} ms  "
            f"p99 {data['latency_p99_ms']:.2f} ms  "
            f"({data['completed']} ok, {data['rejected_busy']} busy, "
            f"{data['errors']} errors)"
        )
        if self.first_error is not None:
            text += f"  first error: {self.first_error}"
        return text


def _client_loop(
    host: str,
    port: int,
    statements: list[str],
    offset: int,
    duration: float,
    request_timeout: float,
    start_barrier: threading.Barrier,
    report: LoadReport,
    lock: threading.Lock,
    columnar: bool = True,
) -> None:
    completed = 0
    rejected = 0
    errors = 0
    cache_hits = 0
    latencies: list[float] = []
    errors_by_code: dict[str, int] = {}
    first_error: str | None = None
    try:
        with ServerClient(host, port, columnar=columnar) as client:
            # Connect first; the measurement window opens for every
            # client at once when the barrier releases.
            start_barrier.wait(timeout=30)
            deadline = time.perf_counter() + duration
            index = offset
            while time.perf_counter() < deadline:
                sql = statements[index % len(statements)]
                index += 1
                started = time.perf_counter()
                try:
                    response = client.query_response(
                        sql, timeout=request_timeout
                    )
                except ServerError as exc:
                    # Typed transport failure (retries exhausted inside
                    # the client): tally it under its error code and
                    # keep the loop alive — the client re-dials on the
                    # next request.
                    errors += 1
                    errors_by_code[exc.code] = (
                        errors_by_code.get(exc.code, 0) + 1
                    )
                    if first_error is None:
                        first_error = f"{exc.code}: {exc}"
                    continue
                elapsed = time.perf_counter() - started
                if response.get("ok"):
                    completed += 1
                    latencies.append(elapsed)
                    if response.get("cached"):
                        cache_hits += 1
                elif (
                    response.get("error", {}).get("code") == "busy"
                ):
                    rejected += 1
                    time.sleep(_BUSY_BACKOFF_SECONDS)
                else:
                    errors += 1
                    error = response.get("error", {})
                    code = str(error.get("code", "unknown"))
                    errors_by_code[code] = errors_by_code.get(code, 0) + 1
                    if first_error is None:
                        first_error = (
                            f"{code}: {error.get('message', '<no message>')}"
                        )
    except Exception as exc:  # broad-ok: recorded in the report below
        errors += 1
        code = "client-crash"
        errors_by_code[code] = errors_by_code.get(code, 0) + 1
        if first_error is None:
            first_error = f"{code}: {type(exc).__name__}: {exc}"
    with lock:
        report.completed += completed
        report.rejected_busy += rejected
        report.errors += errors
        report.cache_hits += cache_hits
        report.latencies.extend(latencies)
        for code, count in errors_by_code.items():
            report.errors_by_code[code] = (
                report.errors_by_code.get(code, 0) + count
            )
        if first_error is not None and report.first_error is None:
            report.first_error = first_error


def run_load(
    host: str,
    port: int,
    statements: list[str],
    clients: int = 8,
    duration: float = 5.0,
    request_timeout: float = 30.0,
    columnar: bool = True,
) -> LoadReport:
    """Drive ``clients`` concurrent closed-loop clients for ``duration``
    seconds and aggregate their outcomes. ``columnar`` selects the
    response wire format the clients negotiate (RCF1 vs JSON rows)."""
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if not statements:
        raise ValueError("statements must not be empty")
    report = LoadReport(clients=clients, duration_seconds=duration)
    lock = threading.Lock()
    # +1 for this thread: workers connect first, then everyone enters
    # the measurement window together when the barrier releases.
    barrier = threading.Barrier(clients + 1)
    threads = []
    for worker in range(clients):
        # Stagger each client's starting point in the mix so the cache
        # sees a realistic interleaving rather than a lockstep scan.
        offset = (worker * 7) % len(statements)
        thread = threading.Thread(
            target=_client_loop,
            args=(
                host,
                port,
                statements,
                offset,
                duration,
                request_timeout,
                barrier,
                report,
                lock,
                columnar,
            ),
            daemon=True,
        )
        threads.append(thread)
        thread.start()
    barrier.wait(timeout=30)
    started = time.perf_counter()
    for thread in threads:
        thread.join(timeout=duration + request_timeout + 30)
    report.duration_seconds = time.perf_counter() - started
    return report
