"""Execution backends for the query server.

The server itself only speaks the wire protocol and enforces admission;
*what* executes a statement is a :class:`Dispatcher`:

:class:`EmbeddedDispatcher`
    A single-node :class:`~repro.query.engine.QueryEngine` shared by the
    server's executor threads (the engine's caches are thread-safe).
    This substitutes for the paper's embedded Spark SQL front-end.
:class:`ClusterDispatcher`
    Scatters statements over an attached cluster —
    :class:`~repro.cluster.ProcessCluster` (one OS process per worker)
    or the simulated :class:`~repro.cluster.ModelarCluster`. The
    master's RPC channel is single-threaded, so cluster execution is
    serialised with a lock; admission control upstream bounds how many
    requests can pile up on it.

Both carry a :class:`~repro.server.result_cache.QueryResultCache` and an
optional cooperative :class:`CancelToken` per query.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Callable

from ..core.errors import ModelarError
from ..modelardb import ModelarDB
from ..obs import get_registry
from ..query.engine import QueryEngine
from ..storage.interface import Storage
from .protocol import CancelledError, DeadlineError
from .result_cache import CachedResult, QueryResultCache

#: ``EXPLAIN ANALYZE`` results are measurements of one execution — a
#: cached breakdown would report a stale timing, so they bypass the
#: result cache entirely (no lookup, no store).
_EXPLAIN_RE = re.compile(r"^\s*EXPLAIN\b", re.IGNORECASE)


class CancelToken:
    """Cooperative cancellation flag shared with the executor thread.

    The event loop sets it (explicit ``cancel`` op or deadline expiry);
    code running the query polls it — long-running hooks can
    :meth:`wait` on it instead of sleeping blindly.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def cancel(self, reason: str = "cancelled") -> bool:
        """Set the flag; returns False if it was already set."""
        if self._event.is_set():
            return False
        self.reason = reason
        self._event.set()
        return True

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float) -> bool:
        """Block up to ``timeout`` seconds; True if cancelled meanwhile."""
        return self._event.wait(timeout)

    def raise_if_cancelled(self) -> None:
        if not self._event.is_set():
            return
        if self.reason == "timeout":
            raise DeadlineError("query deadline expired")
        raise CancelledError(f"query {self.reason or 'cancelled'}")


#: Test/instrumentation hook run in the executor thread just before a
#: statement executes: ``hook(sql, token)``.
ExecuteHook = Callable[[str, CancelToken | None], None]


class Dispatcher:
    """Common dispatch machinery: result cache + cooperative cancel."""

    mode = "abstract"

    def __init__(
        self,
        result_cache_capacity: int = 256,
        execute_hook: ExecuteHook | None = None,
    ) -> None:
        self.result_cache = QueryResultCache(result_cache_capacity)
        self._execute_hook = execute_hook

    # -- to be provided by subclasses ----------------------------------
    def _run(self, sql: str, as_of: int | None = None) -> list[dict]:
        raise NotImplementedError

    def _backend_stats(self) -> dict:
        return {}

    def catalog(self) -> dict:
        return {}

    def close(self) -> None:
        """Release backend resources; idempotent."""

    # -- shared paths --------------------------------------------------
    def execute(
        self,
        sql: str,
        token: CancelToken | None = None,
        as_of: int | None = None,
    ) -> tuple[list[dict], bool]:
        """Execute one statement; returns (rows, served-from-cache).

        ``as_of`` bounds the read at a knowledge time (the request-level
        spelling of the statement's ``AS OF`` clause) and keys the
        result cache alongside the statement text.

        Raises :class:`~repro.core.errors.ModelarError` subclasses for
        SQL errors and :class:`~repro.server.protocol.ServerError`
        subclasses when the token fired first.
        """
        if token is not None:
            token.raise_if_cancelled()
        cacheable = _EXPLAIN_RE.match(sql) is None
        # The cache is keyed by statement text; an as_of kwarg changes
        # the statement's meaning, so it becomes part of the key.
        cache_key = sql if as_of is None else f"{sql}\x00as_of={as_of}"
        # Snapshot the generation before touching storage so a flush
        # racing with execution prevents caching the (possibly stale)
        # result rather than poisoning the cache.
        generation = self.result_cache.generation
        if cacheable:
            rows = self.result_cache.get(cache_key)
            if rows is not None:
                return rows, True
        if self._execute_hook is not None:
            self._execute_hook(sql, token)
            if token is not None:
                token.raise_if_cancelled()
        rows = self._run(sql, as_of)
        if cacheable:
            # CachedResult memoises the columnar wire encoding, so every
            # hit on this entry serves byte-identical frames for free.
            rows = CachedResult(rows)
            self.result_cache.put(cache_key, rows, generation)
        return rows, False

    def notify_flush(self) -> None:
        """Invalidate cached results after new segments became visible."""
        self.result_cache.invalidate()

    def metrics(self) -> dict:
        """The metrics registry snapshot this backend serves from.

        The embedded engine shares the server's process, so the
        process-wide registry is the whole story; the cluster dispatcher
        overrides this to fold in worker-process registries.
        """
        return get_registry().snapshot()

    def stats(self) -> dict:
        payload = {
            "mode": self.mode,
            "result_cache": self.result_cache.stats(),
        }
        payload.update(self._backend_stats())
        return payload


class EmbeddedDispatcher(Dispatcher):
    """Serve from one in-process :class:`QueryEngine`."""

    mode = "embedded"

    def __init__(
        self,
        engine: QueryEngine,
        owned_storage: Storage | None = None,
        result_cache_capacity: int = 256,
        execute_hook: ExecuteHook | None = None,
    ) -> None:
        super().__init__(result_cache_capacity, execute_hook)
        self._engine = engine
        self._owned_storage = owned_storage
        self._closed = False

    @classmethod
    def open_directory(
        cls, directory: str | os.PathLike, **kwargs
    ) -> "EmbeddedDispatcher":
        """Open a storage directory (via :meth:`ModelarDB.open`) for
        serving.

        The dispatcher owns the store: :meth:`close` (the server's
        shutdown path) closes it, releasing the directory for the next
        ``serve`` invocation.
        """
        db = ModelarDB.open(directory)
        return cls(db.engine, owned_storage=db.storage, **kwargs)

    @classmethod
    def for_db(cls, db, **kwargs) -> "EmbeddedDispatcher":
        """Serve an existing :class:`~repro.modelardb.ModelarDB`.

        Registers the result cache as a flush listener, so ingestion on
        ``db`` invalidates cached results the moment segments land.
        """
        dispatcher = cls(db.engine, **kwargs)
        db.add_flush_listener(dispatcher.notify_flush)
        return dispatcher

    @property
    def engine(self) -> QueryEngine:
        return self._engine

    def _run(self, sql: str, as_of: int | None = None) -> list[dict]:
        return self._engine.sql(sql, as_of=as_of)

    def notify_flush(self) -> None:
        super().notify_flush()
        self._engine.invalidate_caches()

    def _backend_stats(self) -> dict:
        return {"segment_cache": self._engine.segment_cache.stats()}

    def catalog(self) -> dict:
        metadata = self._engine.metadata
        tids = sorted(metadata.all_tids())
        return {
            "n_series": len(tids),
            "tids": tids[:1024],
            "dimension_columns": metadata.dimension_columns(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owned_storage is not None:
            self._owned_storage.close()


class ClusterDispatcher(Dispatcher):
    """Serve by scattering statements over an attached cluster."""

    mode = "cluster"

    def __init__(
        self,
        cluster,
        owns_cluster: bool = False,
        result_cache_capacity: int = 256,
        execute_hook: ExecuteHook | None = None,
    ) -> None:
        super().__init__(result_cache_capacity, execute_hook)
        self._cluster = cluster
        self._owns_cluster = owns_cluster
        self._closed = False
        # The master's worker RPC is one channel per worker with
        # synchronous request/reply — concurrent scatters would
        # interleave frames, so cluster execution is serialised here.
        self._lock = threading.Lock()
        self._queries = 0
        self._failovers = 0

    def _run(self, sql: str, as_of: int | None = None) -> list[dict]:
        with self._lock:
            # The per-worker channels are synchronous request/reply, so
            # holding the lock across the scatter IS the design (see the
            # comment on self._lock).
            rows, report = self._cluster.sql(sql, as_of=as_of)  # reprolint: disable=RPR003
            self._queries += 1
            self._failovers += len(getattr(report, "failovers", ()))
        return rows

    def _backend_stats(self) -> dict:
        return {
            "workers": len(self._cluster.workers),
            "cluster_queries": self._queries,
            "cluster_failovers": self._failovers,
        }

    def metrics(self) -> dict:
        cluster_metrics = getattr(self._cluster, "metrics", None)
        if cluster_metrics is None:  # simulated cluster: master only
            return super().metrics()
        with self._lock:
            return cluster_metrics()

    def catalog(self) -> dict:
        tids = sorted(
            tid
            for worker in self._cluster.workers
            for tid in getattr(worker, "tids", ())
        )
        return {"n_series": len(tids), "tids": tids[:1024]}

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._owns_cluster:
            close = getattr(self._cluster, "close", None)
            if close is not None:
                close()


def is_query_error(error: Exception) -> bool:
    """True when ``error`` is a library error safe to report in-band."""
    return isinstance(error, ModelarError)
