"""Blocking client for the query server.

One :class:`ServerClient` wraps one TCP connection and issues one
request at a time (the closed-loop shape: think time happens between
calls). Errors come back typed — :class:`~repro.server.protocol.BusyError`
for admission rejections, :class:`~repro.server.protocol.DeadlineError`
for expired deadlines, :class:`~repro.server.protocol.RemoteQueryError`
for SQL the engine rejected — so callers can branch on back-pressure
without parsing messages.

    with ServerClient(host, port) as client:
        rows = client.query("SELECT SUM_S(*) FROM Segment")
        client.stats()["counters"]
"""

from __future__ import annotations

import itertools
import socket

from .protocol import (
    WIRE_COLUMNAR,
    ServerError,
    raise_for_error,
    recv_frame,
    send_frame,
)

_CLIENT_IDS = itertools.count(1)


class ServerClient:
    """A blocking protocol client over one connection.

    ``columnar=True`` (the default) advertises the columnar response
    format on query requests; ``recv_frame`` decodes either body
    transparently, and servers that predate the format simply ignore
    the ``accept`` field and answer JSON.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        socket_timeout: float | None = 60.0,
        columnar: bool = True,
    ) -> None:
        self._sock = socket.create_connection(
            (host, port), timeout=connect_timeout
        )
        self._sock.settimeout(socket_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._id_prefix = f"c{next(_CLIENT_IDS)}"
        self._requests = itertools.count(1)
        self._accept = [WIRE_COLUMNAR] if columnar else None

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one frame, wait for its response frame."""
        send_frame(self._sock, payload)
        response = recv_frame(self._sock)
        if response is None:
            raise ServerError("server closed the connection")
        return response

    def next_query_id(self) -> str:
        """A unique id usable with ``query``/``cancel``."""
        return f"{self._id_prefix}-{next(self._requests)}"

    # ------------------------------------------------------------------
    def query_response(
        self,
        sql: str,
        timeout: float | None = None,
        query_id: str | None = None,
    ) -> dict:
        """Raw response for a query (no raise on structured errors)."""
        payload = {"op": "query", "sql": sql}
        if self._accept is not None:
            payload["accept"] = self._accept
        if timeout is not None:
            payload["timeout"] = timeout
        if query_id is not None:
            payload["id"] = query_id
        return self.request(payload)

    def query(
        self,
        sql: str,
        timeout: float | None = None,
        query_id: str | None = None,
    ) -> list[dict]:
        """Execute SQL; returns rows or raises the typed ServerError."""
        response = self.query_response(sql, timeout, query_id)
        raise_for_error(response)
        return response["rows"]

    def ping(self) -> bool:
        response = self.request({"op": "ping"})
        raise_for_error(response)
        return bool(response.get("pong"))

    def stats(self) -> dict:
        response = self.request({"op": "stats"})
        raise_for_error(response)
        return response["stats"]

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot (see ``docs/METRICS.md``)."""
        response = self.request({"op": "metrics"})
        raise_for_error(response)
        return response["metrics"]

    def cancel(self, query_id: str) -> bool:
        """Best-effort cancel; True if the id named an in-flight query."""
        response = self.request({"op": "cancel", "id": query_id})
        raise_for_error(response)
        return bool(response.get("cancelled"))

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
