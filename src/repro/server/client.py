"""Blocking client for the query server.

One :class:`ServerClient` wraps one TCP connection and issues one
request at a time (the closed-loop shape: think time happens between
calls). Errors come back typed — :class:`~repro.server.protocol.BusyError`
for admission rejections, :class:`~repro.server.protocol.DeadlineError`
for expired deadlines, :class:`~repro.server.protocol.RemoteQueryError`
for SQL the engine rejected — so callers can branch on back-pressure
without parsing messages.

Transient transport failures are retried: a dropped connection (server
restart, half-open socket) is re-dialled with capped exponential
backoff and the request re-sent. Every request op is idempotent
(queries are reads; ``cancel`` is best-effort), so a replay after an
ambiguous failure is safe. Once the retry budget is spent the failure
surfaces as :class:`~repro.server.protocol.ConnectionLostError` — a
typed, error-coded :class:`ServerError` rather than a raw ``OSError``,
so the load generator's report can tally it like any other error code.

    with ServerClient(host, port) as client:
        rows = client.query("SELECT SUM_S(*) FROM Segment")
        client.stats()["counters"]
"""

from __future__ import annotations

import itertools
import socket
import time

from .protocol import (
    WIRE_COLUMNAR,
    ConnectionLostError,
    raise_for_error,
    recv_frame,
    send_frame,
)

_CLIENT_IDS = itertools.count(1)


class ServerClient:
    """A blocking protocol client over one (re-dialled) connection.

    ``columnar=True`` (the default) advertises the columnar response
    format on query requests; ``recv_frame`` decodes either body
    transparently, and servers that predate the format simply ignore
    the ``accept`` field and answer JSON.

    ``retries`` bounds how many times one request is re-attempted after
    a transport failure, sleeping ``backoff * 2**attempt`` seconds
    (capped at ``max_backoff``) before each reconnect.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        socket_timeout: float | None = 60.0,
        columnar: bool = True,
        retries: int = 2,
        backoff: float = 0.05,
        max_backoff: float = 1.0,
    ) -> None:
        self._host = host
        self._port = port
        self._connect_timeout = connect_timeout
        self._socket_timeout = socket_timeout
        self._retries = max(retries, 0)
        self._backoff = backoff
        self._max_backoff = max_backoff
        self._sock: socket.socket | None = None
        self._connect()
        self._id_prefix = f"c{next(_CLIENT_IDS)}"
        self._requests = itertools.count(1)
        self._accept = [WIRE_COLUMNAR] if columnar else None

    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self._connect_timeout
        )
        sock.settimeout(self._socket_timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, payload: dict) -> dict:
        """Send one frame, wait for its response frame.

        Transparently reconnects and replays the request on transport
        errors, with capped exponential backoff between attempts;
        raises :class:`ConnectionLostError` when the budget is spent.
        ``socket.timeout`` is *not* retried — a response may still be
        in flight, and replaying over the same connection would
        desynchronise request/response pairing.
        """
        last_error: str = "connection lost"
        for attempt in range(self._retries + 1):
            if attempt:
                time.sleep(
                    min(
                        self._backoff * (2 ** (attempt - 1)),
                        self._max_backoff,
                    )
                )
            try:
                sock = self._sock if self._sock is not None \
                    else self._connect()
                send_frame(sock, payload)
                response = recv_frame(sock)
            except socket.timeout:
                raise
            except (ConnectionError, OSError) as exc:
                self._drop_connection()
                last_error = f"{type(exc).__name__}: {exc}"
                continue
            if response is None:
                # Clean EOF mid-request: the server went away between
                # our send and its reply. Same treatment as an abort.
                self._drop_connection()
                last_error = "server closed the connection"
                continue
            return response
        raise ConnectionLostError(
            f"connection to {self._host}:{self._port} lost after "
            f"{self._retries + 1} attempts ({last_error})"
        )

    def next_query_id(self) -> str:
        """A unique id usable with ``query``/``cancel``."""
        return f"{self._id_prefix}-{next(self._requests)}"

    # ------------------------------------------------------------------
    def query_response(
        self,
        sql: str,
        timeout: float | None = None,
        query_id: str | None = None,
        as_of: int | None = None,
    ) -> dict:
        """Raw response for a query (no raise on structured errors)."""
        payload = {"op": "query", "sql": sql}
        if self._accept is not None:
            payload["accept"] = self._accept
        if timeout is not None:
            payload["timeout"] = timeout
        if query_id is not None:
            payload["id"] = query_id
        if as_of is not None:
            payload["as_of"] = as_of
        return self.request(payload)

    def query(
        self,
        sql: str,
        timeout: float | None = None,
        query_id: str | None = None,
        as_of: int | None = None,
    ) -> list[dict]:
        """Execute SQL; returns rows or raises the typed ServerError.

        ``as_of`` bounds the read at a knowledge time, the request-level
        spelling of the statement's ``AS OF`` clause.
        """
        response = self.query_response(sql, timeout, query_id, as_of)
        raise_for_error(response)
        return response["rows"]

    def ping(self) -> bool:
        response = self.request({"op": "ping"})
        raise_for_error(response)
        return bool(response.get("pong"))

    def stats(self) -> dict:
        response = self.request({"op": "stats"})
        raise_for_error(response)
        return response["stats"]

    def metrics(self) -> dict:
        """The server's metrics-registry snapshot (see ``docs/METRICS.md``)."""
        response = self.request({"op": "metrics"})
        raise_for_error(response)
        return response["metrics"]

    def cancel(self, query_id: str) -> bool:
        """Best-effort cancel; True if the id named an in-flight query."""
        response = self.request({"op": "cancel", "id": query_id})
        raise_for_error(response)
        return bool(response.get("cancelled"))

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
