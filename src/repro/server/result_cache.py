"""Query-result LRU cache keyed on normalized SQL.

Serving workloads repeat the same statements (dashboards, polling
clients), so finished row sets are cached whole. The key is the SQL
text with whitespace collapsed and keywords/identifiers upper-cased —
*outside* string literals, which stay verbatim so ``Park = 'Aalborg'``
and ``Park = 'AALBORG'`` never share an entry.

Ingestion invalidates the cache: the dispatcher registers itself as a
flush listener, and every bulk write that lands bumps the generation
and drops all entries, so a cached result can never outlive the segment
set it was computed from.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..obs import get_registry

_DEFAULT_CAPACITY = 256


class CachedResult(list):
    """A result row list that memoises its columnar wire encoding.

    The wire layer (:func:`repro.server.protocol.encode_columnar_frame`)
    stores the encoded column buffers here the first time the result is
    serialised, so every result-cache hit re-serialises to the exact
    same bytes without re-walking the rows. Behaves as a plain list
    everywhere else.
    """

    __slots__ = ("columnar_columns",)

    def __init__(self, rows=()) -> None:
        super().__init__(rows)
        self.columnar_columns: tuple[list[dict], list[bytes]] | None = None


def normalize_sql(text: str) -> str:
    """Canonical cache key: collapse whitespace, upper-case outside
    string literals (which are preserved byte-for-byte)."""
    parts: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char in "'\"":
            end = index + 1
            while end < length and text[end] != char:
                end += 1
            parts.append(text[index:min(end + 1, length)])
            index = end + 1
        elif char.isspace():
            if parts and parts[-1] != " ":
                parts.append(" ")
            while index < length and text[index].isspace():
                index += 1
        else:
            parts.append(char.upper())
            index += 1
    return "".join(parts).strip()


class QueryResultCache:
    """Thread-safe LRU from normalized SQL to finished row lists.

    Cached rows are returned by reference and must be treated as
    immutable — the server only ever serialises them.
    """

    def __init__(self, capacity: int = _DEFAULT_CAPACITY) -> None:
        self._capacity = max(capacity, 0)
        self._entries: OrderedDict[str, list[dict]] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.generation = 0
        metrics = get_registry()
        self._hits_total = metrics.counter("server.result_cache_hits_total")
        self._misses_total = metrics.counter(
            "server.result_cache_misses_total"
        )
        self._invalidations_total = metrics.counter(
            "server.result_cache_invalidations_total"
        )

    def get(self, sql: str) -> list[dict] | None:
        key = normalize_sql(sql)
        # The counter instruments carry their own internal lock; bump
        # them only after releasing the cache lock (lock discipline,
        # RPR003) — same pattern as invalidate() below.
        with self._lock:
            rows = self._entries.get(key)
            if rows is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if rows is None:
            self._misses_total.inc()
            return None
        self._hits_total.inc()
        return rows

    def put(self, sql: str, rows: list[dict], generation: int) -> None:
        """Store a result computed while ``generation`` was current.

        A result computed before an invalidation raced with it is stale;
        the generation check drops it instead of caching it.
        """
        if self._capacity == 0:
            return
        key = normalize_sql(sql)
        with self._lock:
            if generation != self.generation:
                return
            self._entries[key] = rows
            self._entries.move_to_end(key)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop everything; called when ingestion flushes new segments."""
        with self._lock:
            self._entries.clear()
            self.generation += 1
            self.invalidations += 1
        self._invalidations_total.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "invalidations": self.invalidations,
                "generation": self.generation,
            }
