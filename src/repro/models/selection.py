"""Best-compression model selection (ingestion step iii, Section 3.2).

When the last model in the cascade can fit no more data points, the model
providing the best compression ratio among all candidates is flushed.
"""

from __future__ import annotations

from typing import Sequence

from ..core.errors import ModelError
from .base import ModelFitter


def select_best(
    candidates: Sequence[tuple[int, ModelFitter]]
) -> tuple[int, ModelFitter]:
    """Pick the (mid, fitter) pair with the best compression ratio.

    Only fitters that accepted at least one timestamp are eligible. Ties
    keep the earliest candidate (the cascade's preferred order).
    """
    best: tuple[int, ModelFitter] | None = None
    best_ratio = -1.0
    for mid, fitter in candidates:
        if fitter.length == 0:
            continue
        ratio = fitter.compression_ratio()
        if ratio > best_ratio:
            best = (mid, fitter)
            best_ratio = ratio
    if best is None:
        raise ModelError("no candidate model accepted any data points")
    return best
