"""PMC-Mean: the constant model [25], extended for group compression.

PMC-Mean represents a run of data points with a single value. The group
extension (Section 5.2, Fig. 10) follows from the observation that under
the uniform error norm only the extreme values matter: the set of values
``V`` arriving at one timestamp collapses to the intersection of their
acceptable intervals, so the fitter only tracks a running lower/upper
bound plus the running average used to pick the representative.

Parameters are a single float32 (4 bytes), as in the paper's schema.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..core.errors import ModelError
from .base import (
    FittedModel,
    ModelFitter,
    ModelType,
    feasible_prefix,
    float32_within,
    to_float32,
    value_interval,
    value_intervals,
)

_FORMAT = "<f"


class PMCMeanFitter(ModelFitter):
    """Online constant-model fitter over a group of series."""

    def __init__(self, n_columns: int, error_bound: float, length_limit: int) -> None:
        super().__init__(n_columns, error_bound, length_limit)
        self._lower = -math.inf
        self._upper = math.inf
        self._sum = 0.0
        self._count = 0

    def _try_append(self, values) -> bool:
        lower, upper = value_interval(values, self.error_bound)
        new_lower = max(self._lower, lower)
        new_upper = min(self._upper, upper)
        if float32_within(new_lower, new_upper) is None:
            return False
        self._lower = new_lower
        self._upper = new_upper
        self._sum += sum(values)
        self._count += len(values)
        return True

    def _extend(self, block: np.ndarray) -> int:
        # Intersecting per-tick intervals is an associative min/max
        # reduction, so the running bounds after tick i are cumulative
        # intersections — nested, which makes the float32 feasibility
        # test a monotone prefix predicate (see feasible_prefix).
        lowers, uppers = value_intervals(block, self.error_bound)
        # Seeding the running bounds into the first row makes the
        # accumulate produce the combined intersections directly.
        if self._lower > lowers[0]:
            lowers[0] = self._lower
        if self._upper < uppers[0]:
            uppers[0] = self._upper
        np.maximum.accumulate(lowers, out=lowers)
        np.minimum.accumulate(uppers, out=uppers)
        accepted = feasible_prefix(lowers, uppers)
        if accepted:
            self._lower = float(lowers[accepted - 1])
            self._upper = float(uppers[accepted - 1])
            # The representative divides a sequentially-accumulated sum;
            # numpy's pairwise summation rounds differently, so add the
            # accepted rows exactly as the scalar kernel would.
            for row in block[:accepted].tolist():
                self._sum += sum(row)
            self._count += accepted * self.n_columns
        return accepted

    def _representative(self) -> float:
        """The stored constant: the running average clamped into the
        feasible interval, nudged to a float32 inside it."""
        if self._count == 0:
            raise ModelError("cannot encode an empty PMC-Mean model")
        average = self._sum / self._count
        clamped = min(max(average, self._lower), self._upper)
        candidate = to_float32(clamped)
        if self._lower <= candidate <= self._upper:
            return candidate
        feasible = float32_within(self._lower, self._upper)
        if feasible is None:  # pragma: no cover - _try_append guarantees it
            raise ModelError("no float32 representative exists")
        return feasible

    def parameters(self) -> bytes:
        return struct.pack(_FORMAT, self._representative())

    def size_bytes(self) -> int:
        return struct.calcsize(_FORMAT)


class FittedPMCMean(FittedModel):
    """A decoded constant model; all aggregates are O(1)."""

    def __init__(self, value: float, n_columns: int, length: int) -> None:
        super().__init__(n_columns, length)
        self.value = value

    @property
    def constant_time_aggregates(self) -> bool:
        return True

    def values(self) -> np.ndarray:
        return np.full((self.length, self.n_columns), self.value)

    def value_at(self, index: int, column: int) -> float:
        return self.value

    def values_block(self, first: int, last: int) -> np.ndarray:
        # Level fill: one constant for every (tick, column) of the slice.
        return np.full((last - first + 1, self.n_columns), self.value)

    def slice_sum(self, first: int, last: int, column: int) -> float:
        return self.value * (last - first + 1)

    def slice_min(self, first: int, last: int, column: int) -> float:
        return self.value

    def slice_max(self, first: int, last: int, column: int) -> float:
        return self.value


class PMCMean(ModelType):
    """Model-table entry for PMC-Mean (classpath ``"PMC"``)."""

    name = "PMC"

    def fitter(
        self, n_columns: int, error_bound: float, length_limit: int
    ) -> PMCMeanFitter:
        return PMCMeanFitter(n_columns, error_bound, length_limit)

    def decode(
        self, parameters: bytes, n_columns: int, length: int
    ) -> FittedPMCMean:
        if len(parameters) != struct.calcsize(_FORMAT):
            raise ModelError(
                f"PMC-Mean expects {struct.calcsize(_FORMAT)} parameter "
                f"bytes, got {len(parameters)}"
            )
        (value,) = struct.unpack(_FORMAT, parameters)
        return FittedPMCMean(value, n_columns, length)
