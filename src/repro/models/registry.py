"""The model extension API (Section 3.1).

Models are registered under classpath-style names; the registry assigns
the Mids recorded in the Model table (Fig. 6) and decodes stored segments
back into queryable models. Users add models without touching the engine:

    registry = ModelRegistry()
    registry.register(MyModelType())
    config = Configuration(models=("PMC", "acme.MyModel", "Gorilla"))
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.errors import UnknownModelError
from .base import FittedModel, ModelFitter, ModelType
from .gorilla import Gorilla
from .pmc_mean import PMCMean
from .swing import Swing


def default_model_types() -> list[ModelType]:
    """The three models shipped with ModelarDB Core (Section 3.1)."""
    return [PMCMean(), Swing(), Gorilla()]


class ModelRegistry:
    """Maps model classpaths to Mids and decodes stored parameters."""

    def __init__(self, extra_types: Iterable[ModelType] = ()) -> None:
        self._by_mid: dict[int, ModelType] = {}
        self._by_name: dict[str, int] = {}
        for model_type in default_model_types():
            self.register(model_type)
        for model_type in extra_types:
            self.register(model_type)

    def register(self, model_type: ModelType) -> int:
        """Register a (possibly user-defined) model type; returns its Mid."""
        if not model_type.name:
            raise UnknownModelError("model types must define a name")
        existing = self._by_name.get(model_type.name)
        if existing is not None:
            return existing
        mid = len(self._by_mid) + 1
        self._by_mid[mid] = model_type
        self._by_name[model_type.name] = mid
        return mid

    def mid_of(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownModelError(f"unknown model classpath {name!r}") from None

    def by_mid(self, mid: int) -> ModelType:
        try:
            return self._by_mid[mid]
        except KeyError:
            raise UnknownModelError(f"unknown model id {mid}") from None

    def by_name(self, name: str) -> ModelType:
        return self.by_mid(self.mid_of(name))

    def names(self) -> list[str]:
        return list(self._by_name)

    def model_table(self) -> dict[int, str]:
        """The Model table of Fig. 6: Mid -> classpath."""
        return {mid: model.name for mid, model in self._by_mid.items()}

    def fitters(
        self,
        names: Sequence[str],
        n_columns: int,
        error_bound: float,
        length_limit: int,
    ) -> list[tuple[int, ModelFitter]]:
        """Fresh fitters for the configured model cascade, with Mids."""
        return [
            (
                self.mid_of(name),
                self.by_name(name).fitter(n_columns, error_bound, length_limit),
            )
            for name in names
        ]

    def decode(
        self, mid: int, parameters: bytes, n_columns: int, length: int
    ) -> FittedModel:
        return self.by_mid(mid).decode(parameters, n_columns, length)
