"""Bit-level reader/writer used by the Gorilla codec.

Bits are written most-significant-first within each byte, matching the
layout of the original Gorilla paper [28].
"""

from __future__ import annotations

from ..core.errors import ModelError


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._pending = 0  # bits currently in the accumulator

    def write(self, value: int, bits: int) -> None:
        """Write the ``bits`` least significant bits of ``value``."""
        if bits < 0 or bits > 64:
            raise ModelError(f"cannot write {bits} bits at once")
        if bits == 0:
            return
        if value < 0 or value >> bits:
            raise ModelError(f"value {value} does not fit in {bits} bits")
        self._accumulator = (self._accumulator << bits) | value
        self._pending += bits
        while self._pending >= 8:
            self._pending -= 8
            self._bytes.append((self._accumulator >> self._pending) & 0xFF)
        self._accumulator &= (1 << self._pending) - 1

    def write_bit(self, bit: int) -> None:
        self.write(bit & 1, 1)

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._pending

    def byte_length(self) -> int:
        """Length in whole bytes if flushed now."""
        return len(self._bytes) + (1 if self._pending else 0)

    def to_bytes(self) -> bytes:
        """The written bits, zero-padded to a whole number of bytes."""
        if not self._pending:
            return bytes(self._bytes)
        tail = (self._accumulator << (8 - self._pending)) & 0xFF
        return bytes(self._bytes) + bytes([tail])


class BitReader:
    """Sequential reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit offset

    def read(self, bits: int) -> int:
        """Read ``bits`` bits as an unsigned integer."""
        if bits == 0:
            return 0
        end = self._position + bits
        if end > len(self._data) * 8:
            raise ModelError("bit stream exhausted")
        value = 0
        position = self._position
        remaining = bits
        while remaining:
            byte = self._data[position // 8]
            offset = position % 8
            available = 8 - offset
            take = min(available, remaining)
            chunk = (byte >> (available - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            position += take
            remaining -= take
        self._position = end
        return value

    def read_bit(self) -> int:
        return self.read(1)

    @property
    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._position
