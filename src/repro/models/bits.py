"""Bit-level reader/writer used by the Gorilla codec.

Bits are written most-significant-first within each byte, matching the
layout of the original Gorilla paper [28].
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ModelError


class BitWriter:
    """Append-only bit buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._pending = 0  # bits currently in the accumulator

    def write(self, value: int, bits: int) -> None:
        """Write the ``bits`` least significant bits of ``value``."""
        if bits < 0 or bits > 64:
            raise ModelError(f"cannot write {bits} bits at once")
        if bits == 0:
            return
        if value < 0 or value >> bits:
            raise ModelError(f"value {value} does not fit in {bits} bits")
        self._accumulator = (self._accumulator << bits) | value
        self._pending += bits
        while self._pending >= 8:
            self._pending -= 8
            self._bytes.append((self._accumulator >> self._pending) & 0xFF)
        self._accumulator &= (1 << self._pending) - 1

    def write_bit(self, bit: int) -> None:
        self.write(bit & 1, 1)

    def write_big(self, value: int, bits: int) -> None:
        """Write an arbitrarily wide non-negative ``value`` in one call.

        Equivalent to :meth:`write` without the 64-bit ceiling; whole
        bytes are flushed through ``int.to_bytes`` instead of one
        ``append`` per byte, which is what makes bulk bit-packing (the
        batch Gorilla encoder) cheap.
        """
        if bits == 0:
            return
        if value < 0 or value >> bits:
            raise ModelError(f"value does not fit in {bits} bits")
        accumulator = (self._accumulator << bits) | value
        pending = self._pending + bits
        whole, pending = divmod(pending, 8)
        if whole:
            self._bytes += (accumulator >> pending).to_bytes(whole, "big")
            accumulator &= (1 << pending) - 1
        self._accumulator = accumulator
        self._pending = pending

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._pending

    def byte_length(self) -> int:
        """Length in whole bytes if flushed now."""
        return len(self._bytes) + (1 if self._pending else 0)

    def to_bytes(self) -> bytes:
        """The written bits, zero-padded to a whole number of bytes."""
        if not self._pending:
            return bytes(self._bytes)
        tail = (self._accumulator << (8 - self._pending)) & 0xFF
        return bytes(self._bytes) + bytes([tail])


def pack_xor_block(
    writer: BitWriter,
    xors: list,
    leadings: list,
    trailings: list,
    window_leading: int,
    window_meaningful: int,
) -> tuple[int, int]:
    """Append a run of precomputed Gorilla XOR residues in one pass.

    The batch half of the Gorilla codec: the caller vectorizes the XOR
    chain and the leading/trailing zero counts over a whole block, and
    this loop only carries the sequential window state. MSB-first writes
    concatenate, so packing control bits, window headers and payloads
    into one accumulated field per value leaves the stream bit-identical
    to the scalar encoder's separate writes. Returns the updated
    ``(window_leading, window_meaningful)`` pair.
    """
    # Fields accumulate into one big integer, flushed in bulk through
    # write_big — one BitWriter call per value dominates the encode
    # otherwise. The periodic flush bounds the cost of big-int shifts.
    accumulator = 0
    accumulated_bits = 0
    window_trailing = 32 - window_leading - window_meaningful
    for xor, leading, trailing in zip(xors, leadings, trailings):
        if xor == 0:
            accumulator <<= 1
            accumulated_bits += 1
        else:
            if leading > 31:
                leading = 31
            if (
                window_leading >= 0
                and leading >= window_leading
                and trailing >= window_trailing
            ):
                width = 2 + window_meaningful
                field = (0b10 << window_meaningful) | (xor >> window_trailing)
            else:
                meaningful = 32 - leading - trailing
                prefix = (((0b11 << 5) | leading) << 5) | (meaningful - 1)
                width = 12 + meaningful
                field = (prefix << meaningful) | (xor >> trailing)
                window_leading = leading
                window_meaningful = meaningful
                window_trailing = trailing
            accumulator = (accumulator << width) | field
            accumulated_bits += width
        if accumulated_bits >= 8192:
            writer.write_big(accumulator, accumulated_bits)
            accumulator = 0
            accumulated_bits = 0
    writer.write_big(accumulator, accumulated_bits)
    return window_leading, window_meaningful


def unpack_xor_block(data: bytes, count: int) -> np.ndarray:
    """Decode ``count`` Gorilla float32 bit patterns in one pass.

    The batch half of the decoder, mirroring :func:`pack_xor_block`: the
    sequential control-bit walk happens once per segment, emitting every
    value's bit pattern into one ``<u4`` array that the caller
    reinterprets as float32 in bulk — instead of a struct round trip per
    value. Bit reads are inlined on local state, so decoding costs one
    Python-level loop over values rather than several reader calls each.
    """
    patterns = np.empty(count, dtype="<u4")
    if count == 0:
        return patterns
    total_bits = len(data) * 8
    position = 0

    def read(bits: int) -> int:
        nonlocal position
        end = position + bits
        if end > total_bits:
            raise ModelError("bit stream exhausted")
        value = 0
        cursor = position
        remaining = bits
        while remaining:
            byte = data[cursor // 8]
            offset = cursor % 8
            available = 8 - offset
            take = available if available < remaining else remaining
            value = (value << take) | (
                (byte >> (available - take)) & ((1 << take) - 1)
            )
            cursor += take
            remaining -= take
        position = end
        return value

    previous = read(32)
    patterns[0] = previous
    window_leading = -1
    window_meaningful = 0
    for index in range(1, count):
        if read(1):
            if read(1):
                window_leading = read(5)
                window_meaningful = read(5) + 1
            window_trailing = 32 - window_leading - window_meaningful
            previous ^= read(window_meaningful) << window_trailing
        patterns[index] = previous
    return patterns


class BitReader:
    """Sequential reader over bytes produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit offset

    def read(self, bits: int) -> int:
        """Read ``bits`` bits as an unsigned integer."""
        if bits == 0:
            return 0
        end = self._position + bits
        if end > len(self._data) * 8:
            raise ModelError("bit stream exhausted")
        value = 0
        position = self._position
        remaining = bits
        while remaining:
            byte = self._data[position // 8]
            offset = position % 8
            available = 8 - offset
            take = min(available, remaining)
            chunk = (byte >> (available - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            position += take
            remaining -= take
        self._position = end
        return value

    def read_bit(self) -> int:
        return self.read(1)

    @property
    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._position
