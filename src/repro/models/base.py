"""The black-box model interface of Section 3.2.

ModelarDB treats models as black boxes behind a common interface so users
can plug in their own (Section 3.1). A model type provides two things:

* an online :class:`ModelFitter` used during ingestion — it receives, at
  each sampling interval, the vector of values from all series of a group
  and either accepts it (staying within the error bound for *every* value)
  or permanently rejects it, leaving its state unchanged; and
* a :class:`FittedModel` decoded from stored parameters — it reconstructs
  the represented values and, where the mathematics allow, answers
  aggregate queries in constant time (Section 6.1).

Error bounds are *relative* and expressed in percent (the uniform error
norm over ``|v - mest(t)| <= bound/100 * |v|``), matching the evaluation's
0/1/5/10 % settings; a bound of zero requests lossless representation.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np
import numpy.typing as npt

from ..core.errors import ModelError
from ..core.segment import SEGMENT_OVERHEAD_BYTES

_FloatArray = npt.NDArray[np.float64]

#: Raw cost of one uncompressed data point: int64 timestamp + float32 value.
RAW_POINT_BYTES = 12

#: Relative spacing of float32 values (2^-23); an interval wider than two
#: spacings is guaranteed to contain a float32 grid point.
_FLOAT32_RELATIVE_STEP = 2 ** -23

_FLOAT32_PACK = struct.Struct("<f")


def value_interval(
    values: Sequence[float], error_bound: float
) -> tuple[float, float]:
    """The representable interval shared by all values of one timestamp.

    With a relative bound of ``p`` percent, each value ``v`` accepts any
    estimate in ``[v - p|v|/100, v + p|v|/100]``; a single estimate for a
    whole group must lie in the intersection of those intervals (the
    min/max reduction of Section 5.2). Returns ``(lower, upper)`` with
    ``lower > upper`` when the intersection is empty.

    Implemented with plain Python arithmetic: group vectors are short
    (one value per series), where scalar loops beat numpy dispatch — this
    is the ingestion hot path.
    """
    scale = error_bound / 100.0
    lower = -float("inf")
    upper = float("inf")
    for value in values:
        deviation = abs(value) * scale
        low = value - deviation
        high = value + deviation
        if low > lower:
            lower = low
        if high < upper:
            upper = high
    return lower, upper


def value_intervals(
    block: _FloatArray, error_bound: float
) -> tuple[_FloatArray, _FloatArray]:
    """Per-tick representable intervals for a ``(ticks, n)`` block.

    The columnar counterpart of :func:`value_interval`: row ``i`` of the
    returned ``(lowers, uppers)`` pair is exactly what
    ``value_interval(block[i], error_bound)`` would produce, computed for
    the whole block at once. Requires finite inputs (the ingestion path
    strips gaps before fitting).
    """
    deviation = np.abs(block)
    deviation *= error_bound / 100.0
    bounds = block - deviation
    lowers = bounds.max(axis=1)
    np.add(block, deviation, out=bounds)
    uppers = bounds.min(axis=1)
    return lowers, uppers


def feasible_prefix(lowers: _FloatArray, uppers: _FloatArray) -> int:
    """Largest ``k`` such that ``[lowers[k-1], uppers[k-1]]`` admits a
    float32 representative.

    Requires *nested* intervals (``lowers`` non-decreasing, ``uppers``
    non-increasing — the cumulative intersections built by the PMC-Mean
    and Swing kernels), which makes feasibility a monotone prefix
    predicate: once an intersection loses its float32 grid point it never
    regains one. A vectorized sufficient-width test settles the easy
    prefix; a binary search over the remainder needs only
    ``O(log ticks)`` exact :func:`float32_within` calls.
    """
    n = len(lowers)
    if n == 0:
        return 0
    widths = uppers - lowers
    midpoints = (uppers + lowers) / 2.0
    np.abs(midpoints, out=midpoints)
    midpoints *= 4.0 * _FLOAT32_RELATIVE_STEP
    midpoints += 1e-37
    certain = widths > midpoints
    # A certainly-feasible row proves (by monotonicity) that the whole
    # prefix through it is feasible, so search only past the last one.
    if certain.any():
        low = n - int(certain[::-1].argmax())
    else:
        low = 0
    high = n
    while low < high:
        mid = (low + high + 1) // 2
        if float32_within(float(lowers[mid - 1]), float(uppers[mid - 1])) is not None:
            low = mid
        else:
            high = mid - 1
    return low


def to_float32(value: float) -> float:
    """Round one value to float32 precision (cheap struct round trip)."""
    return float(_FLOAT32_PACK.unpack(_FLOAT32_PACK.pack(value))[0])


def float32_within(lower: float, upper: float) -> float | None:
    """A float32-representable value inside ``[lower, upper]``, or None.

    Model parameters are stored as float32 (as in the paper's schema), so
    fitters must ensure a float32 representative exists before accepting a
    data point — otherwise a value accepted under float64 arithmetic could
    violate the bound after the round trip through storage.
    """
    if lower > upper:
        return None
    midpoint = (lower + upper) / 2.0
    # Fast path: an interval at least two float32 steps wide always
    # contains a float32, and the rounded midpoint stays inside it.
    width = upper - lower
    if width > 4.0 * _FLOAT32_RELATIVE_STEP * abs(midpoint) + 1e-37:
        return to_float32(midpoint)
    # Comparisons must happen in float64: NumPy's weak promotion would
    # otherwise round the float64 bounds to float32 first and accept
    # candidates that are actually outside the interval.
    candidate = float(np.float32(midpoint))
    if candidate < lower:
        candidate = float(
            np.nextafter(np.float32(candidate), np.float32(np.inf))
        )
    elif candidate > upper:
        candidate = float(
            np.nextafter(np.float32(candidate), np.float32(-np.inf))
        )
    if lower <= candidate <= upper:
        return candidate
    return None


class ModelFitter(ABC):
    """Online fitter for one model over an ``n_columns``-wide group.

    Subclasses must leave their state unchanged when :meth:`append`
    rejects a vector, so the ingestion loop can hand the same buffered
    values to the next model type in the cascade.
    """

    def __init__(self, n_columns: int, error_bound: float, length_limit: int) -> None:
        if n_columns < 1:
            raise ModelError("a model must represent at least one series")
        if error_bound < 0:
            raise ModelError("error bound must be >= 0")
        if length_limit < 1:
            raise ModelError("length limit must be >= 1")
        self.n_columns = n_columns
        self.error_bound = error_bound
        self.length_limit = length_limit
        self.length = 0

    def append(self, values: Sequence[float]) -> bool:
        """Try to extend the model with the group's next value vector.

        ``values`` is the group's value tuple for one timestamp (one
        float per series, in column order). Returns True when the model
        still represents every accepted value within the error bound;
        False when it cannot (state unchanged).
        """
        if self.length >= self.length_limit:
            return False
        if len(values) != self.n_columns:
            raise ModelError(
                f"expected {self.n_columns} values, got {len(values)}"
            )
        if not self._try_append(values):
            return False
        self.length += 1
        return True

    def extend(
        self,
        timestamps: npt.NDArray[np.int64] | None,
        matrix: npt.ArrayLike,
    ) -> int:
        """Batch counterpart of :meth:`append` over a columnar block.

        ``matrix`` is a ``(ticks, n_columns)`` float block (one row per
        timestamp, columns in group order, all values finite); the
        optional ``timestamps`` array is positional metadata that the
        bundled models ignore. Consumes the longest acceptable leading
        prefix and returns its tick count — by contract the resulting
        state is *bit-identical* to calling :meth:`append` row by row
        until the first rejection, so the block and scalar ingestion
        paths produce the same segments. A return short of ``len(matrix)``
        means the next row was rejected (or the length limit was hit);
        as with :meth:`append`, state is unchanged past the accepted
        prefix.
        """
        block = np.asarray(matrix, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != self.n_columns:
            raise ModelError(
                f"expected a (ticks, {self.n_columns}) block, "
                f"got shape {block.shape}"
            )
        capacity = self.length_limit - self.length
        if capacity <= 0 or block.shape[0] == 0:
            return 0
        accepted = self._extend(block[:capacity])
        self.length += accepted
        return accepted

    def _extend(self, block: _FloatArray) -> int:
        """Model-specific batch accept; returns the accepted tick count.

        The default falls back to the scalar kernel one row at a time.
        Vectorized overrides must accept exactly the prefix the scalar
        kernel would (bit-identical state included) and, like
        :meth:`_try_append`, must not mutate state past that prefix.
        ``block`` is already capacity-capped and shape-checked.
        """
        accepted = 0
        # This IS the documented scalar fallback, not a regression — the
        # vectorized kernels override it.
        for row in block.tolist():  # reprolint: disable=RPR006
            if not self._try_append(row):
                break
            accepted += 1
        return accepted

    @abstractmethod
    def _try_append(self, values: Sequence[float]) -> bool:
        """Model-specific accept/reject; must not mutate state on reject."""

    @abstractmethod
    def parameters(self) -> bytes:
        """Encode the fitted model (requires ``length >= 1``)."""

    def size_bytes(self) -> int:
        """Current encoded size; used for compression-ratio selection."""
        return len(self.parameters())

    def compression_ratio(self) -> float:
        """Raw bytes represented per stored byte if flushed now."""
        if self.length == 0:
            return 0.0
        raw = self.length * self.n_columns * RAW_POINT_BYTES
        return raw / (SEGMENT_OVERHEAD_BYTES + self.size_bytes())


class FittedModel(ABC):
    """A decoded model: reconstruction plus aggregate hooks.

    Index-based: row ``i`` corresponds to timestamp ``start + i * SI`` of
    the enclosing segment; columns follow the segment's member-Tid order.
    All slice bounds are inclusive, mirroring the paper's inclusive
    segment end times (disconnected segments, Fig. 12).
    """

    def __init__(self, n_columns: int, length: int) -> None:
        self.n_columns = n_columns
        self.length = length

    @abstractmethod
    def values(self) -> _FloatArray:
        """Reconstruct all values as a ``(length, n_columns)`` array."""

    def value_at(self, index: int, column: int) -> float:
        """Reconstruct a single value (defaults to full reconstruction)."""
        return float(self.values()[index, column])

    def column_values(self, column: int) -> _FloatArray:
        return self.values()[:, column]

    def values_block(self, first: int, last: int) -> _FloatArray:
        """Reconstruct rows ``first..last`` (inclusive) as a
        ``(last - first + 1, n_columns)`` block.

        The batch decode kernel of the columnar read path, the read-side
        mirror of :meth:`ModelFitter.extend`: by contract the result is
        bit-identical to ``values()[first:last + 1]``, so row-at-a-time
        and block execution reconstruct the same floats. Models with a
        closed form override it to generate only the requested slice
        instead of the whole segment.
        """
        return self.values()[first:last + 1]

    # ------------------------------------------------------------------
    # Aggregate hooks. The defaults reconstruct; models with closed forms
    # (constant, linear) override them with O(1) implementations, which is
    # what makes Segment View aggregates fast (Section 6.1).
    # ------------------------------------------------------------------
    @property
    def constant_time_aggregates(self) -> bool:
        """Whether sum/min/max over a slice avoid reconstruction."""
        return False

    def slice_sum(self, first: int, last: int, column: int) -> float:
        return float(self.values()[first:last + 1, column].sum())

    def slice_min(self, first: int, last: int, column: int) -> float:
        return float(self.values()[first:last + 1, column].min())

    def slice_max(self, first: int, last: int, column: int) -> float:
        return float(self.values()[first:last + 1, column].max())


class ModelType(ABC):
    """A registered model implementation (one row of the Model table)."""

    #: Classpath-style unique name, e.g. ``"PMC"`` or ``"acme.MyModel"``.
    name: str = ""

    #: Whether the model can represent *any* value sequence (lossless
    #: fallbacks like Gorilla). The segment generator exploits this: an
    #: always-fitting model need not be fed during ingestion — only its
    #: size matters at flush time, so fitting is deferred (and skipped
    #: entirely when :meth:`minimum_size_bytes` proves it cannot win).
    always_fits: bool = False

    def minimum_size_bytes(self, n_values: int) -> int | None:
        """An exact lower bound on the encoded size for ``n_values``
        values, or None when no useful bound exists. Used to prune
        needless fitting of always-fitting models."""
        return None

    @abstractmethod
    def fitter(
        self, n_columns: int, error_bound: float, length_limit: int
    ) -> ModelFitter:
        """A fresh online fitter for a group of ``n_columns`` series."""

    @abstractmethod
    def decode(
        self, parameters: bytes, n_columns: int, length: int
    ) -> FittedModel:
        """Decode stored parameters back into a queryable model."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
