"""Multiple models per segment — the Section 5.1 baseline.

The simplest way to give *any* single-series model group support: split
the incoming value vector and fit each series to its own sub-model, then
store all sub-models in one segment. The segment's metadata is shared, so
duplicate metadata shrinks from N copies to one, but the value payload is
not shared (which is exactly what the single-model extensions of
Section 5.2 improve on — measured by ``bench_ablation_multi_vs_single``).

All sub-models must cover the same time interval. When one sub-model
rejects a value that another already accepted (case III of Fig. 9), the
segment's end time simply is not advanced: this fitter replays the
accepted prefix into fresh sub-fitters, which also discards any leftover
parameters a variable-size model such as Gorilla produced for the
rejected timestamp.
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.errors import ModelError
from .base import FittedModel, ModelFitter, ModelType

_LENGTH_FORMAT = "<I"
_LENGTH_SIZE = struct.calcsize(_LENGTH_FORMAT)


class MultiFitter(ModelFitter):
    """N independent single-series fitters advancing in lock step."""

    def __init__(
        self,
        base: ModelType,
        n_columns: int,
        error_bound: float,
        length_limit: int,
    ) -> None:
        super().__init__(n_columns, error_bound, length_limit)
        self._base = base
        self._fitters = [
            base.fitter(1, error_bound, length_limit) for _ in range(n_columns)
        ]
        self._accepted: list[tuple[float, ...]] = []

    def _try_append(self, values) -> bool:
        accepted_columns = 0
        for column, fitter in enumerate(self._fitters):
            if not fitter.append((values[column],)):
                break
            accepted_columns += 1
        if accepted_columns == self.n_columns:
            self._accepted.append(tuple(values))
            return True
        if accepted_columns:
            self._rollback()
        return False

    def _extend(self, block: np.ndarray) -> int:
        # Offer each column its own sub-block; the jointly accepted
        # prefix is the shortest per-column prefix. Any sub-fitter that
        # ran past it is rebuilt by replaying the accepted rows — for
        # deterministic online fitters the replayed state is identical to
        # the incremental state, so this matches the scalar lock step
        # (including Fig. 9 case III) bit for bit.
        accepted = block.shape[0]
        offered: list[int] = []
        for column, fitter in enumerate(self._fitters):
            if accepted == 0:
                break
            taken = fitter.extend(None, block[:accepted, column:column + 1])
            offered.append(taken)
            if taken < accepted:
                accepted = taken
        if accepted:
            self._accepted.extend(
                tuple(row) for row in block[:accepted].tolist()
            )
        if any(taken != accepted for taken in offered):
            self._rollback()
        return accepted

    def _rollback(self) -> None:
        """Rebuild sub-fitters from the accepted prefix (Fig. 9, case III)."""
        self._fitters = [
            self._base.fitter(1, self.error_bound, self.length_limit)
            for _ in range(self.n_columns)
        ]
        if not self._accepted:
            return
        matrix = np.asarray(self._accepted, dtype=np.float64)
        for column, fitter in enumerate(self._fitters):
            replayed = fitter.extend(None, matrix[:, column:column + 1])
            if replayed != len(self._accepted):
                raise ModelError(
                    "sub-model rejected a previously accepted value "
                    "during rollback"
                )

    def parameters(self) -> bytes:
        if not self._accepted:
            raise ModelError("cannot encode an empty multi-model segment")
        parts = []
        for fitter in self._fitters:
            encoded = fitter.parameters()
            parts.append(struct.pack(_LENGTH_FORMAT, len(encoded)))
            parts.append(encoded)
        return b"".join(parts)

    def size_bytes(self) -> int:
        if not self._accepted:
            return 0
        return sum(
            _LENGTH_SIZE + fitter.size_bytes() for fitter in self._fitters
        )


class FittedMulti(FittedModel):
    """Decoded multi-model segment: one sub-model per column."""

    def __init__(
        self, sub_models: list[FittedModel], length: int
    ) -> None:
        super().__init__(len(sub_models), length)
        self._sub_models = sub_models

    @property
    def constant_time_aggregates(self) -> bool:
        return all(m.constant_time_aggregates for m in self._sub_models)

    def values(self) -> np.ndarray:
        columns = [m.values()[:, 0] for m in self._sub_models]
        return np.column_stack(columns)

    def value_at(self, index: int, column: int) -> float:
        return self._sub_models[column].value_at(index, 0)

    def slice_sum(self, first: int, last: int, column: int) -> float:
        return self._sub_models[column].slice_sum(first, last, 0)

    def slice_min(self, first: int, last: int, column: int) -> float:
        return self._sub_models[column].slice_min(first, last, 0)

    def slice_max(self, first: int, last: int, column: int) -> float:
        return self._sub_models[column].slice_max(first, last, 0)


class MultiModel(ModelType):
    """Wrap a single-series model type for the Section 5.1 baseline.

    Registered as e.g. ``"Multi(Swing)"``.
    """

    def __init__(self, base: ModelType) -> None:
        self._base = base
        self.name = f"Multi({base.name})"
        self.always_fits = base.always_fits

    def fitter(
        self, n_columns: int, error_bound: float, length_limit: int
    ) -> MultiFitter:
        return MultiFitter(self._base, n_columns, error_bound, length_limit)

    def decode(
        self, parameters: bytes, n_columns: int, length: int
    ) -> FittedMulti:
        sub_models = []
        offset = 0
        for _ in range(n_columns):
            if offset + _LENGTH_SIZE > len(parameters):
                raise ModelError("truncated multi-model parameters")
            (size,) = struct.unpack_from(_LENGTH_FORMAT, parameters, offset)
            offset += _LENGTH_SIZE
            encoded = parameters[offset:offset + size]
            if len(encoded) != size:
                raise ModelError("truncated multi-model parameters")
            offset += size
            sub_models.append(self._base.decode(encoded, 1, length))
        return FittedMulti(sub_models, length)
