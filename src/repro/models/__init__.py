"""Model types for Multi-Model Group Compression (Section 5).

Exports the three models shipped with ModelarDB Core — PMC-Mean, Swing
and Gorilla, all extended for group compression — plus the registry used
to add user-defined models and the Section 5.1 multi-models-per-segment
baseline.
"""

from .base import (
    RAW_POINT_BYTES,
    FittedModel,
    ModelFitter,
    ModelType,
    float32_within,
    value_interval,
)
from .gorilla import Gorilla
from .multi import MultiModel
from .pmc_mean import PMCMean
from .registry import ModelRegistry, default_model_types
from .selection import select_best
from .swing import Swing

__all__ = [
    "RAW_POINT_BYTES",
    "FittedModel",
    "ModelFitter",
    "ModelType",
    "float32_within",
    "value_interval",
    "Gorilla",
    "MultiModel",
    "PMCMean",
    "ModelRegistry",
    "default_model_types",
    "select_best",
    "Swing",
]
