"""Swing: the linear model [15], extended for group compression.

The Swing filter fits a linear function anchored at the initial data
point, maintaining the feasible slope interval online and shrinking it as
each data point arrives. Two extensions from Section 5.2 (Fig. 10):

* the anchor of the group model is derived from the *set* of values at
  the first timestamp using the PMC reduction (a float32 within the
  intersection of their acceptable intervals, preferring the average);
* at every later timestamp only the intersection interval of the group's
  values constrains the slope, so the update stays O(1) per timestamp
  regardless of group size.

Parameters are two float32 values — intercept (value at the segment's
first timestamp) and per-step slope — 8 bytes total. Working with index
steps rather than raw timestamps keeps the encoding independent of the
sampling interval.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..core.errors import ModelError
from .base import (
    FittedModel,
    ModelFitter,
    ModelType,
    feasible_prefix,
    float32_within,
    to_float32,
    value_interval,
    value_intervals,
)

_FORMAT = "<ff"


class SwingFitter(ModelFitter):
    """Online linear-model fitter over a group of series."""

    def __init__(self, n_columns: int, error_bound: float, length_limit: int) -> None:
        super().__init__(n_columns, error_bound, length_limit)
        self._anchor: float | None = None
        self._slope_lower = -math.inf
        self._slope_upper = math.inf

    def _try_append(self, values) -> bool:
        lower, upper = value_interval(values, self.error_bound)
        if lower > upper:
            return False
        if self._anchor is None:
            return self._fit_anchor(values, lower, upper)

        step = self.length  # index of the incoming timestamp
        slope_lower = max(self._slope_lower, (lower - self._anchor) / step)
        slope_upper = min(self._slope_upper, (upper - self._anchor) / step)
        if float32_within(slope_lower, slope_upper) is None:
            return False
        self._slope_lower = slope_lower
        self._slope_upper = slope_upper
        return True

    def _extend(self, block: np.ndarray) -> int:
        accepted = 0
        if self._anchor is None:
            # The anchor derives from the first row alone; reuse the
            # scalar reduction and vectorize the slope narrowing that
            # dominates.
            row = block[0].tolist()
            lower, upper = value_interval(row, self.error_bound)
            if lower > upper or not self._fit_anchor(row, lower, upper):
                return 0
            accepted = 1
            block = block[1:]
            if block.shape[0] == 0:
                return accepted
        lowers, uppers = value_intervals(block, self.error_bound)
        # Row i of the block lands at index self.length + accepted + i of
        # the segment; the anchor sits at index 0, so each row bounds the
        # slope by (interval - anchor) / step. An empty per-tick interval
        # (lower > upper) inverts under the monotone transform and keeps
        # the cumulative intersection empty, so float32_within rejects it
        # exactly as the scalar kernel's early lower > upper test does.
        steps = np.arange(
            self.length + accepted,
            self.length + accepted + block.shape[0],
            dtype=np.float64,
        )
        lowers -= self._anchor
        lowers /= steps
        slope_lowers = lowers
        uppers -= self._anchor
        uppers /= steps
        slope_uppers = uppers
        # Seeding the running slope bounds into the first row makes the
        # accumulate produce the combined intersections directly.
        if self._slope_lower > slope_lowers[0]:
            slope_lowers[0] = self._slope_lower
        if self._slope_upper < slope_uppers[0]:
            slope_uppers[0] = self._slope_upper
        np.maximum.accumulate(slope_lowers, out=slope_lowers)
        np.minimum.accumulate(slope_uppers, out=slope_uppers)
        narrowed = feasible_prefix(slope_lowers, slope_uppers)
        if narrowed:
            self._slope_lower = float(slope_lowers[narrowed - 1])
            self._slope_upper = float(slope_uppers[narrowed - 1])
        return accepted + narrowed

    def _fit_anchor(self, values, lower: float, upper: float) -> bool:
        """Pin the line's initial point using the PMC reduction."""
        average = sum(values) / len(values)
        clamped = min(max(average, lower), upper)
        candidate = to_float32(clamped)
        if not lower <= candidate <= upper:
            feasible = float32_within(lower, upper)
            if feasible is None:
                return False
            candidate = feasible
        self._anchor = candidate
        return True

    def _slope(self) -> float:
        if self.length <= 1:
            return 0.0
        slope = float32_within(self._slope_lower, self._slope_upper)
        if slope is None:  # pragma: no cover - _try_append guarantees it
            raise ModelError("no float32 slope exists")
        return slope

    def parameters(self) -> bytes:
        if self._anchor is None:
            raise ModelError("cannot encode an empty Swing model")
        return struct.pack(_FORMAT, self._anchor, self._slope())

    def size_bytes(self) -> int:
        return struct.calcsize(_FORMAT)


class FittedSwing(FittedModel):
    """A decoded linear model; aggregates use closed forms (Fig. 11)."""

    def __init__(
        self, intercept: float, slope: float, n_columns: int, length: int
    ) -> None:
        super().__init__(n_columns, length)
        self.intercept = intercept
        self.slope = slope

    @property
    def constant_time_aggregates(self) -> bool:
        return True

    def values(self) -> np.ndarray:
        line = self.intercept + self.slope * np.arange(self.length)
        return np.repeat(line[:, np.newaxis], self.n_columns, axis=1)

    def value_at(self, index: int, column: int) -> float:
        return self.intercept + self.slope * index

    def values_block(self, first: int, last: int) -> np.ndarray:
        # Linear ramp over the requested indices only. Elementwise the
        # arithmetic is exactly value_at's `intercept + slope * index`,
        # so the block is bit-identical to values()[first:last + 1].
        line = self.intercept + self.slope * np.arange(first, last + 1)
        return np.repeat(line[:, np.newaxis], self.n_columns, axis=1)

    def slice_sum(self, first: int, last: int, column: int) -> float:
        # Arithmetic series: n * (first value + last value) / 2.
        count = last - first + 1
        first_value = self.intercept + self.slope * first
        last_value = self.intercept + self.slope * last
        return count * (first_value + last_value) / 2.0

    def slice_min(self, first: int, last: int, column: int) -> float:
        return min(self.value_at(first, column), self.value_at(last, column))

    def slice_max(self, first: int, last: int, column: int) -> float:
        return max(self.value_at(first, column), self.value_at(last, column))


class Swing(ModelType):
    """Model-table entry for Swing (classpath ``"Swing"``)."""

    name = "Swing"

    def fitter(
        self, n_columns: int, error_bound: float, length_limit: int
    ) -> SwingFitter:
        return SwingFitter(n_columns, error_bound, length_limit)

    def decode(
        self, parameters: bytes, n_columns: int, length: int
    ) -> FittedSwing:
        if len(parameters) != struct.calcsize(_FORMAT):
            raise ModelError(
                f"Swing expects {struct.calcsize(_FORMAT)} parameter bytes, "
                f"got {len(parameters)}"
            )
        intercept, slope = struct.unpack(_FORMAT, parameters)
        return FittedSwing(intercept, slope, n_columns, length)
