"""Gorilla: lossless XOR float compression [28], extended for groups.

Gorilla encodes each float32 value by XOR-ing its bit pattern with the
previous value's and storing only the meaningful (non-zero) bits. The
group extension of Section 5.2 (Fig. 10) stores values in *time-ordered
blocks*: at every sampling interval the values of all series in the group
are appended in column order before moving to the next timestamp. For
correlated series the values inside a block differ only slightly from
their predecessor, so most encodings need just a few bits, exploiting
temporal correlation *and* cross-series correlation at once.

This is the 32-bit adaptation used by ModelarDB: a control bit, then for
changed values either the previous meaningful-bit window (control ``10``)
or an explicit window of 5 leading-zero bits + 5 bits of length (control
``11``). The model is lossless with respect to float32 values and is the
fallback that can always fit (only the model length limit stops it).
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.errors import ModelError
from .base import FittedModel, ModelFitter, ModelType
from .bits import BitWriter, pack_xor_block, unpack_xor_block

_BITS = 32
_LEADING_BITS = 5  # encodes 0..31 leading zeros
_LENGTH_BITS = 5  # encodes meaningful-bit count - 1 (1..32)

_FLOAT = struct.Struct("<f")
_UINT = struct.Struct("<I")


def _float_to_bits(value: float) -> int:
    return _UINT.unpack(_FLOAT.pack(value))[0]


def _bits_to_float(pattern: int) -> float:
    return _FLOAT.unpack(_UINT.pack(pattern))[0]


def _leading_zeros(pattern: int) -> int:
    return _BITS - pattern.bit_length()


def _trailing_zeros(pattern: int) -> int:
    if pattern == 0:
        return _BITS
    return (pattern & -pattern).bit_length() - 1


class GorillaFitter(ModelFitter):
    """Streaming Gorilla encoder over a group's flattened value stream."""

    def __init__(self, n_columns: int, error_bound: float, length_limit: int) -> None:
        super().__init__(n_columns, error_bound, length_limit)
        self._writer = BitWriter()
        self._previous: int | None = None
        self._window_leading = -1
        self._window_meaningful = 0

    def _try_append(self, values) -> bool:
        for value in values:
            self._encode(_float_to_bits(value))
        return True

    def _extend(self, block: np.ndarray) -> int:
        # Lossless fallback: every row fits, so the whole capacity-capped
        # block is consumed. The XOR chain and zero counts vectorize
        # (frexp is exact on integers below 2**53); only the sequential
        # window bookkeeping stays a Python loop, in pack_xor_block.
        patterns = (
            np.ascontiguousarray(block, dtype=np.float32)
            .view(np.uint32)
            .reshape(-1)
        )
        start = 0
        if self._previous is None:
            first = int(patterns[0])
            self._writer.write(first, _BITS)
            self._previous = first
            start = 1
        rest = patterns[start:]
        if rest.size:
            shifted = np.empty_like(rest)
            shifted[0] = self._previous
            shifted[1:] = rest[:-1]
            xors = (rest ^ shifted).astype(np.int64)
            _, high = np.frexp(xors)  # frexp exponent == bit_length
            leadings = _BITS - high
            _, low = np.frexp(xors & -xors)
            trailings = low - 1
            self._window_leading, self._window_meaningful = pack_xor_block(
                self._writer,
                xors.tolist(),
                leadings.tolist(),
                trailings.tolist(),
                self._window_leading,
                self._window_meaningful,
            )
            self._previous = int(rest[-1])
        return block.shape[0]

    def _encode(self, pattern: int) -> None:
        if self._previous is None:
            self._writer.write(pattern, _BITS)
            self._previous = pattern
            return

        xor = self._previous ^ pattern
        self._previous = pattern
        if xor == 0:
            self._writer.write_bit(0)
            return

        self._writer.write_bit(1)
        leading = min(_leading_zeros(xor), (1 << _LEADING_BITS) - 1)
        trailing = _trailing_zeros(xor)
        meaningful = _BITS - leading - trailing
        window_trailing = _BITS - self._window_leading - self._window_meaningful
        fits_window = (
            self._window_leading >= 0
            and leading >= self._window_leading
            and trailing >= window_trailing
        )
        if fits_window:
            self._writer.write_bit(0)
            self._writer.write(xor >> window_trailing, self._window_meaningful)
        else:
            self._writer.write_bit(1)
            self._writer.write(leading, _LEADING_BITS)
            self._writer.write(meaningful - 1, _LENGTH_BITS)
            self._writer.write(xor >> trailing, meaningful)
            self._window_leading = leading
            self._window_meaningful = meaningful

    def parameters(self) -> bytes:
        if self.length == 0:
            raise ModelError("cannot encode an empty Gorilla model")
        return self._writer.to_bytes()

    def size_bytes(self) -> int:
        return self._writer.byte_length()


class FittedGorilla(FittedModel):
    """A decoded Gorilla model; reconstruction decodes the bit stream."""

    def __init__(self, parameters: bytes, n_columns: int, length: int) -> None:
        super().__init__(n_columns, length)
        self._parameters = parameters
        self._decoded: np.ndarray | None = None

    def values(self) -> np.ndarray:
        if self._decoded is None:
            self._decoded = self._decode()
        return self._decoded

    def _decode(self) -> np.ndarray:
        # Array-at-once unpack: the sequential control-bit walk emits
        # raw uint32 patterns (unpack_xor_block, mirroring the encoder's
        # pack_xor_block), and the bit-pattern -> float32 -> float64
        # conversion happens vectorized over the whole segment instead of
        # one struct round trip per value. float32 -> float64 widening is
        # exact, so the block is bit-identical to the scalar decode.
        count = self.length * self.n_columns
        patterns = unpack_xor_block(self._parameters, count)
        flat = patterns.view("<f4").astype(np.float64)
        return flat.reshape(self.length, self.n_columns)


class Gorilla(ModelType):
    """Model-table entry for Gorilla (classpath ``"Gorilla"``)."""

    name = "Gorilla"
    always_fits = True

    def minimum_size_bytes(self, n_values: int) -> int:
        # Best case: 32 bits for the first value, one control bit for
        # every identical follower.
        return (_BITS + (n_values - 1) + 7) // 8

    def fitter(
        self, n_columns: int, error_bound: float, length_limit: int
    ) -> GorillaFitter:
        return GorillaFitter(n_columns, error_bound, length_limit)

    def decode(
        self, parameters: bytes, n_columns: int, length: int
    ) -> FittedGorilla:
        return FittedGorilla(parameters, n_columns, length)
