"""Evaluation metrics (Section 7.3).

The paper reports the *actual average error* of lossy ingestion as

    (Σ |rvₙ - avₙ| / Σ |rvₙ|) × 100

over all ingested data points, where ``rv`` are the real and ``av`` the
approximated values.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.timeseries import TimeSeries
from ..modelardb import ModelarDB


def actual_average_error(db: ModelarDB, series: Sequence[TimeSeries]) -> float:
    """The actual average error in percent of a lossy ingestion."""
    absolute_error = 0.0
    absolute_real = 0.0
    for ts in series:
        reconstructed = {
            point.timestamp: point.value for point in db.points(tids=[ts.tid])
        }
        for point in ts:
            if point.value is None:
                continue
            approximated = reconstructed.get(point.timestamp)
            if approximated is None:
                raise ValueError(
                    f"data point ({ts.tid}, {point.timestamp}) was lost"
                )
            absolute_error += abs(point.value - approximated)
            absolute_real += abs(point.value)
    if absolute_real == 0.0:
        return 0.0
    return 100.0 * absolute_error / absolute_real


def max_relative_error(db: ModelarDB, series: Sequence[TimeSeries]) -> float:
    """The worst per-point relative error in percent (bound check)."""
    worst = 0.0
    for ts in series:
        reconstructed = {
            point.timestamp: point.value for point in db.points(tids=[ts.tid])
        }
        for point in ts:
            if point.value is None:
                continue
            approximated = reconstructed[point.timestamp]
            denominator = abs(point.value)
            if denominator == 0.0:
                error = abs(approximated)
            else:
                error = abs(point.value - approximated) / denominator
            worst = max(worst, error)
    return 100.0 * worst


def compression_ratio(raw_points: int, stored_bytes: int) -> float:
    """Raw bytes (12 per point: int64 ts + float32 value) per stored byte."""
    if stored_bytes == 0:
        return float("inf")
    return raw_points * 12 / stored_bytes


def reconstruction_errors(
    db: ModelarDB, ts: TimeSeries
) -> np.ndarray:
    """Per-point absolute errors for one series (property tests)."""
    reconstructed = {
        point.timestamp: point.value for point in db.points(tids=[ts.tid])
    }
    errors = []
    for point in ts:
        if point.value is None:
            continue
        errors.append(abs(point.value - reconstructed[point.timestamp]))
    return np.array(errors)
