"""The evaluation's query workloads (Section 7.2).

Four query sets, expressed as backend-neutral specs executable against
any :class:`~repro.baselines.base.StorageFormat`:

* **S-AGG** — small simple aggregates for interactive analysis: half on
  one time series, half GROUP BY Tid over five series.
* **L-AGG** — large-scale aggregates over the full data set, half with
  GROUP BY Tid.
* **M-AGG** — multi-dimensional aggregates: WHERE restricted to the
  member indicating energy production, GROUP BY month and a dimension
  (variant One) or additionally by Tid (variant Two).
* **P/R** — point and range queries restricted by TS, or Tid and TS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..baselines.base import StorageFormat

_SIMPLE_FUNCTIONS = ("SUM", "MIN", "MAX", "AVG", "COUNT")


def _compose_sql(
    view: str,
    select: Sequence[str],
    where: Sequence[str],
    group: Sequence[str],
    as_of: int | None = None,
) -> str:
    text = f"SELECT {', '.join(select)} FROM {view}"
    if as_of is not None:
        text += f" AS OF {as_of}"
    if where:
        text += f" WHERE {' AND '.join(where)}"
    if group:
        text += f" GROUP BY {', '.join(group)}"
    return text


@dataclass(frozen=True)
class QuerySpec:
    """One backend-neutral query."""

    kind: str  # 'simple' | 'point' | 'range' | 'rollup'
    function: str = "SUM"
    tids: tuple[int, ...] | None = None
    group_by_tid: bool = False
    timestamp: int | None = None
    start: int | None = None
    end: int | None = None
    level: str = "MONTH"
    member: tuple[str, str] | None = None
    group_by: str | None = None
    #: Knowledge-time bound rendered as the statement's ``AS OF`` clause
    #: (None reads the latest-known state).
    as_of: int | None = None

    def to_sql(self) -> str:
        """Render the spec in the engine's SQL dialect.

        The serving layer (:mod:`repro.server`) and its load generator
        drive servers with SQL text rather than programmatic calls, so
        every workload spec can also express itself as a statement.
        """
        if self.kind == "simple":
            select: list[str] = []
            group: list[str] = []
            if self.group_by_tid:
                select.append("Tid")
                group.append("Tid")
            select.append(f"{self.function.upper()}_S(*)")
            where = self._tid_predicates()
            if self.start is not None:
                where.append(f"TS >= {self.start}")
            if self.end is not None:
                where.append(f"TS <= {self.end}")
            return _compose_sql(
                "Segment", select, where, group, self.as_of
            )
        if self.kind == "point":
            return _compose_sql(
                "DataPoint",
                ["TS", "Value"],
                [f"Tid = {self.tids[0]}", f"TS = {self.timestamp}"],
                [],
                self.as_of,
            )
        if self.kind == "range":
            return _compose_sql(
                "DataPoint",
                ["TS", "Value"],
                [
                    f"Tid = {self.tids[0]}",
                    f"TS >= {self.start}",
                    f"TS <= {self.end}",
                ],
                [],
                self.as_of,
            )
        if self.kind == "rollup":
            select = []
            group = []
            if self.group_by:
                select.append(self.group_by)
                group.append(self.group_by)
            if self.group_by_tid:
                select.append("Tid")
                group.append("Tid")
            select.append(
                f"CUBE_{self.function.upper()}_{self.level.upper()}(*)"
            )
            where = self._tid_predicates()
            if self.member is not None:
                where.append(f"{self.member[0]} = '{self.member[1]}'")
            return _compose_sql(
                "Segment", select, where, group, self.as_of
            )
        raise ValueError(f"unknown query kind {self.kind!r}")

    def _tid_predicates(self) -> list[str]:
        if not self.tids:
            return []
        if len(self.tids) == 1:
            return [f"Tid = {self.tids[0]}"]
        return [f"Tid IN ({', '.join(str(tid) for tid in self.tids)})"]

    def run(self, target: StorageFormat):
        if self.kind == "simple":
            return target.simple_aggregate(
                self.function,
                tids=list(self.tids) if self.tids else None,
                group_by_tid=self.group_by_tid,
                start=self.start,
                end=self.end,
            )
        if self.kind == "point":
            return target.point_query(self.tids[0], self.timestamp)
        if self.kind == "range":
            return target.range_query(self.tids[0], self.start, self.end)
        if self.kind == "rollup":
            return target.rollup(
                self.function,
                self.level,
                member=self.member,
                group_by=self.group_by,
                per_tid=self.group_by_tid,
                tids=list(self.tids) if self.tids else None,
            )
        raise ValueError(f"unknown query kind {self.kind!r}")


@dataclass
class QuerySet:
    name: str
    queries: list[QuerySpec] = field(default_factory=list)

    def run(self, target: StorageFormat) -> float:
        """Execute all queries; returns elapsed seconds."""
        started = time.perf_counter()
        for query in self.queries:
            query.run(target)
        return time.perf_counter() - started


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def s_agg(
    tids: Sequence[int], seed: int = 0, count: int = 10
) -> QuerySet:
    """Small aggregates: half single-series, half GROUP BY over five."""
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        function = _SIMPLE_FUNCTIONS[index % len(_SIMPLE_FUNCTIONS)]
        if index % 2 == 0:
            target = (int(rng.choice(tids)),)
            queries.append(
                QuerySpec("simple", function=function, tids=target)
            )
        else:
            chosen = rng.choice(tids, size=min(5, len(tids)), replace=False)
            queries.append(
                QuerySpec(
                    "simple",
                    function=function,
                    tids=tuple(int(t) for t in chosen),
                    group_by_tid=True,
                )
            )
    return QuerySet("S-AGG", queries)


def l_agg(count: int = 4) -> QuerySet:
    """Full-data-set aggregates, half GROUP BY Tid."""
    queries = []
    for index in range(count):
        function = _SIMPLE_FUNCTIONS[index % len(_SIMPLE_FUNCTIONS)]
        queries.append(
            QuerySpec(
                "simple",
                function=function,
                tids=None,
                group_by_tid=index % 2 == 1,
            )
        )
    return QuerySet("L-AGG", queries)


def m_agg(
    member: tuple[str, str],
    group_by: str,
    per_tid: bool = False,
    count: int = 4,
    level: str = "MONTH",
) -> QuerySet:
    """Multi-dimensional aggregates by month and a dimension column.

    ``per_tid=False`` is M-AGG-One (GROUP BY month + dimension);
    ``per_tid=True`` is M-AGG-Two (drill down to month + dimension + Tid).
    """
    queries = []
    for index in range(count):
        function = ("SUM", "AVG")[index % 2]
        queries.append(
            QuerySpec(
                "rollup",
                function=function,
                level=level,
                member=member,
                group_by=group_by,
                group_by_tid=per_tid,
            )
        )
    name = "M-AGG-Two" if per_tid else "M-AGG-One"
    return QuerySet(name, queries)


def p_r(
    tids: Sequence[int],
    start_time: int,
    end_time: int,
    sampling_interval: int,
    seed: int = 0,
    count: int = 10,
    range_fraction: float = 0.02,
) -> QuerySet:
    """Point and range queries (half each)."""
    rng = np.random.default_rng(seed)
    span = end_time - start_time
    queries = []
    for index in range(count):
        tid = int(rng.choice(tids))
        if index % 2 == 0:
            offset = int(rng.integers(0, span // sampling_interval))
            timestamp = start_time + offset * sampling_interval
            queries.append(
                QuerySpec("point", tids=(tid,), timestamp=timestamp)
            )
        else:
            length = max(int(span * range_fraction), sampling_interval)
            offset = int(rng.integers(0, max(span - length, 1)))
            begin = start_time + offset
            queries.append(
                QuerySpec(
                    "range", tids=(tid,), start=begin, end=begin + length
                )
            )
    return QuerySet("P/R", queries)
