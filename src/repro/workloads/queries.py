"""The evaluation's query workloads (Section 7.2).

Four query sets, expressed as backend-neutral specs executable against
any :class:`~repro.baselines.base.StorageFormat`:

* **S-AGG** — small simple aggregates for interactive analysis: half on
  one time series, half GROUP BY Tid over five series.
* **L-AGG** — large-scale aggregates over the full data set, half with
  GROUP BY Tid.
* **M-AGG** — multi-dimensional aggregates: WHERE restricted to the
  member indicating energy production, GROUP BY month and a dimension
  (variant One) or additionally by Tid (variant Two).
* **P/R** — point and range queries restricted by TS, or Tid and TS.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..baselines.base import StorageFormat

_SIMPLE_FUNCTIONS = ("SUM", "MIN", "MAX", "AVG", "COUNT")


@dataclass(frozen=True)
class QuerySpec:
    """One backend-neutral query."""

    kind: str  # 'simple' | 'point' | 'range' | 'rollup'
    function: str = "SUM"
    tids: tuple[int, ...] | None = None
    group_by_tid: bool = False
    timestamp: int | None = None
    start: int | None = None
    end: int | None = None
    level: str = "MONTH"
    member: tuple[str, str] | None = None
    group_by: str | None = None

    def run(self, target: StorageFormat):
        if self.kind == "simple":
            return target.simple_aggregate(
                self.function,
                tids=list(self.tids) if self.tids else None,
                group_by_tid=self.group_by_tid,
                start=self.start,
                end=self.end,
            )
        if self.kind == "point":
            return target.point_query(self.tids[0], self.timestamp)
        if self.kind == "range":
            return target.range_query(self.tids[0], self.start, self.end)
        if self.kind == "rollup":
            return target.rollup(
                self.function,
                self.level,
                member=self.member,
                group_by=self.group_by,
                per_tid=self.group_by_tid,
                tids=list(self.tids) if self.tids else None,
            )
        raise ValueError(f"unknown query kind {self.kind!r}")


@dataclass
class QuerySet:
    name: str
    queries: list[QuerySpec] = field(default_factory=list)

    def run(self, target: StorageFormat) -> float:
        """Execute all queries; returns elapsed seconds."""
        started = time.perf_counter()
        for query in self.queries:
            query.run(target)
        return time.perf_counter() - started


# ----------------------------------------------------------------------
# Workload generators
# ----------------------------------------------------------------------
def s_agg(
    tids: Sequence[int], seed: int = 0, count: int = 10
) -> QuerySet:
    """Small aggregates: half single-series, half GROUP BY over five."""
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        function = _SIMPLE_FUNCTIONS[index % len(_SIMPLE_FUNCTIONS)]
        if index % 2 == 0:
            target = (int(rng.choice(tids)),)
            queries.append(
                QuerySpec("simple", function=function, tids=target)
            )
        else:
            chosen = rng.choice(tids, size=min(5, len(tids)), replace=False)
            queries.append(
                QuerySpec(
                    "simple",
                    function=function,
                    tids=tuple(int(t) for t in chosen),
                    group_by_tid=True,
                )
            )
    return QuerySet("S-AGG", queries)


def l_agg(count: int = 4) -> QuerySet:
    """Full-data-set aggregates, half GROUP BY Tid."""
    queries = []
    for index in range(count):
        function = _SIMPLE_FUNCTIONS[index % len(_SIMPLE_FUNCTIONS)]
        queries.append(
            QuerySpec(
                "simple",
                function=function,
                tids=None,
                group_by_tid=index % 2 == 1,
            )
        )
    return QuerySet("L-AGG", queries)


def m_agg(
    member: tuple[str, str],
    group_by: str,
    per_tid: bool = False,
    count: int = 4,
    level: str = "MONTH",
) -> QuerySet:
    """Multi-dimensional aggregates by month and a dimension column.

    ``per_tid=False`` is M-AGG-One (GROUP BY month + dimension);
    ``per_tid=True`` is M-AGG-Two (drill down to month + dimension + Tid).
    """
    queries = []
    for index in range(count):
        function = ("SUM", "AVG")[index % 2]
        queries.append(
            QuerySpec(
                "rollup",
                function=function,
                level=level,
                member=member,
                group_by=group_by,
                group_by_tid=per_tid,
            )
        )
    name = "M-AGG-Two" if per_tid else "M-AGG-One"
    return QuerySet(name, queries)


def p_r(
    tids: Sequence[int],
    start_time: int,
    end_time: int,
    sampling_interval: int,
    seed: int = 0,
    count: int = 10,
    range_fraction: float = 0.02,
) -> QuerySet:
    """Point and range queries (half each)."""
    rng = np.random.default_rng(seed)
    span = end_time - start_time
    queries = []
    for index in range(count):
        tid = int(rng.choice(tids))
        if index % 2 == 0:
            offset = int(rng.integers(0, span // sampling_interval))
            timestamp = start_time + offset * sampling_interval
            queries.append(
                QuerySpec("point", tids=(tid,), timestamp=timestamp)
            )
        else:
            length = max(int(span * range_fraction), sampling_interval)
            offset = int(rng.integers(0, max(span - length, 1)))
            begin = start_time + offset
            queries.append(
                QuerySpec(
                    "range", tids=(tid,), start=begin, end=begin + length
                )
            )
    return QuerySet("P/R", queries)
