"""Evaluation workloads (S-AGG, L-AGG, M-AGG, P/R) and metrics."""

from .metrics import (
    actual_average_error,
    compression_ratio,
    max_relative_error,
    reconstruction_errors,
)
from .queries import QuerySet, QuerySpec, l_agg, m_agg, p_r, s_agg

__all__ = [
    "actual_average_error",
    "compression_ratio",
    "max_relative_error",
    "reconstruction_errors",
    "QuerySet",
    "QuerySpec",
    "l_agg",
    "m_agg",
    "p_r",
    "s_agg",
]
