"""Query rewriting: Tids and members to Gids (Section 6.2).

User queries reference time series (Tids) and dimension members; segments
are stored per group (Gid). Before hitting storage, the WHERE clause's
Tid and member predicates are rewritten to the Gids of the groups that
contain matching series — that is all the segment store has to index —
and the original Tid set is kept to filter the exploded per-series rows
afterwards (Figs. 11 and 12's *Rewriting* step).

The rewriter also decides, per select-list subtree, whether an aggregate
can be answered *segment-only* — directly from model parameters, without
reconstructing data points (Section 6.1) — or has to materialize. The
decision is part of the plan, shared by both execution modes, so the
row and columnar executors take exactly the same route and stay
bit-identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.scan import SegmentScan
from .metadata import MetadataCache
from .sql import Call, Forecast, Query


@dataclass(frozen=True)
class Predicates:
    """The WHERE-clause facts the rewriter understands.

    ``tids`` — an explicit Tid restriction (None means all);
    ``members`` — equality predicates on denormalised dimension columns;
    ``start_time``/``end_time`` — the closed time interval restriction.
    """

    tids: frozenset[int] | None = None
    members: tuple[tuple[str, str], ...] = ()
    start_time: int | None = None
    end_time: int | None = None


@dataclass(frozen=True)
class RewrittenQuery:
    """Storage-level plan: which partitions to scan, which rows to keep."""

    gids: frozenset[int]
    tids: frozenset[int]
    start_time: int | None
    end_time: int | None
    #: ``AS OF`` knowledge-time bound; None reads the latest-known state.
    as_of: int | None = None

    def scan_request(self, *, all_revisions: bool = False) -> SegmentScan:
        """The typed storage read for this plan.

        Both execution modes build their scan here, so the partitions
        visited, the time clip, and the revision resolution are shared
        verbatim — the row/columnar bit-identity contract extends to
        ``AS OF`` reads by construction.
        """
        return SegmentScan(
            gids=tuple(sorted(self.gids)),
            start_time=self.start_time,
            end_time=self.end_time,
            as_of=self.as_of,
            all_revisions=all_revisions,
        )


@dataclass(frozen=True)
class PushdownDecision:
    """One select-list subtree's execution route, with its reason.

    ``segment_only`` is True when the subtree is answered from segment
    metadata and model parameters alone; False when execution has to
    reconstruct (materialize) data points. ``reason`` is the
    human-readable justification surfaced by ``EXPLAIN ANALYZE``.
    """

    subtree: str
    segment_only: bool
    reason: str

    @property
    def route(self) -> str:
        return "segment" if self.segment_only else "materialize"


def decide_pushdown(query: Query) -> tuple[PushdownDecision, ...]:
    """Per-subtree routing decisions for one parsed query.

    An aggregate subtree is provably segment-answerable when no ``Value``
    predicate constrains it: Tid/member predicates reduce to a Gid scan
    plus a Tid filter on exploded rows, and every supported ``TS``
    predicate narrows the closed query interval, which segment execution
    absorbs exactly by clipping each segment to the inclusive model index
    range covering the interval — no reconstructed point is consulted.
    A ``Value`` predicate, by contrast, filters on reconstructed values,
    so any aggregate under it must materialize.

    Selections have one decision for their scan: Data Point View
    selections return points and materialize by definition; Segment View
    reads (selections and aggregates) never leave segment metadata —
    ``Value`` predicates do not apply to that view and are ignored there,
    matching the engine's long-standing semantics.
    """
    value_conditions = [
        condition
        for condition in query.where
        if condition.column.lower() == "value"
    ]
    if query.has_forecast:
        return tuple(
            PushdownDecision(
                f"FORECAST(TS,{item.horizon})",
                True,
                "forecasts extrapolate model parameters; no stored "
                "point is reconstructed",
            )
            for item in query.select
            if isinstance(item, Forecast)
        )
    if query.similar_to is not None:
        return (
            PushdownDecision(
                "SIMILAR TO",
                True,
                "similarity prunes on segment envelopes from model "
                "parameters; only surviving candidate windows decode",
            ),
        )
    if not query.is_aggregate:
        if query.view == "segment":
            decision = PushdownDecision(
                "scan", True, "segment view selections read segment metadata"
            )
        else:
            decision = PushdownDecision(
                "scan", False, "point selections return reconstructed points"
            )
        return (decision,)
    decisions = []
    for item in query.select:
        if not isinstance(item, Call):
            continue
        subtree = f"{item.function}({item.argument})"
        if query.view == "segment":
            decisions.append(
                PushdownDecision(
                    subtree,
                    True,
                    "segment view aggregates fold model parameters",
                )
            )
        elif value_conditions:
            predicate = value_conditions[0]
            decisions.append(
                PushdownDecision(
                    subtree,
                    False,
                    "Value predicate "
                    f"({predicate.column} {predicate.operator} "
                    f"{predicate.value}) filters reconstructed points",
                )
            )
        else:
            decisions.append(
                PushdownDecision(
                    subtree,
                    True,
                    "no Value predicate; TS bounds clip segment index "
                    "ranges exactly",
                )
            )
    return tuple(decisions)


def rewrite(
    predicates: Predicates,
    cache: MetadataCache,
    as_of: int | None = None,
) -> RewrittenQuery:
    """Rewrite Tid/member predicates into a Gid scan plus a Tid filter."""
    tids = (
        set(predicates.tids)
        if predicates.tids is not None
        else cache.all_tids()
    )
    for column, member in predicates.members:
        tids &= cache.tids_with_member(column, member)
    gids = cache.gids_of(tids)
    return RewrittenQuery(
        gids=frozenset(gids),
        tids=frozenset(tids),
        start_time=predicates.start_time,
        end_time=predicates.end_time,
        as_of=as_of,
    )
