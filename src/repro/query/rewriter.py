"""Query rewriting: Tids and members to Gids (Section 6.2).

User queries reference time series (Tids) and dimension members; segments
are stored per group (Gid). Before hitting storage, the WHERE clause's
Tid and member predicates are rewritten to the Gids of the groups that
contain matching series — that is all the segment store has to index —
and the original Tid set is kept to filter the exploded per-series rows
afterwards (Figs. 11 and 12's *Rewriting* step).
"""

from __future__ import annotations

from dataclasses import dataclass

from .metadata import MetadataCache


@dataclass(frozen=True)
class Predicates:
    """The WHERE-clause facts the rewriter understands.

    ``tids`` — an explicit Tid restriction (None means all);
    ``members`` — equality predicates on denormalised dimension columns;
    ``start_time``/``end_time`` — the closed time interval restriction.
    """

    tids: frozenset[int] | None = None
    members: tuple[tuple[str, str], ...] = ()
    start_time: int | None = None
    end_time: int | None = None


@dataclass(frozen=True)
class RewrittenQuery:
    """Storage-level plan: which partitions to scan, which rows to keep."""

    gids: frozenset[int]
    tids: frozenset[int]
    start_time: int | None
    end_time: int | None


def rewrite(predicates: Predicates, cache: MetadataCache) -> RewrittenQuery:
    """Rewrite Tid/member predicates into a Gid scan plus a Tid filter."""
    tids = (
        set(predicates.tids)
        if predicates.tids is not None
        else cache.all_tids()
    )
    for column, member in predicates.members:
        tids &= cache.tids_with_member(column, member)
    gids = cache.gids_of(tids)
    return RewrittenQuery(
        gids=frozenset(gids),
        tids=frozenset(tids),
        start_time=predicates.start_time,
        end_time=predicates.end_time,
    )
