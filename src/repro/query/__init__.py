"""Query processing: views, aggregates on models, time rollups, SQL."""

from .aggregates import Aggregate, aggregate_by_name, aggregate_names
from .cache import SegmentCache
from .engine import QueryEngine, parse_timestamp
from .metadata import MetadataCache
from .rewriter import Predicates, RewrittenQuery, rewrite
from .rollup import (
    DATEPART_LEVELS,
    TIME_LEVELS,
    datepart_of,
    floor_to_level,
    format_bucket,
    is_datepart,
    next_boundary,
    parse_cube_function,
    rollup_segment,
)
from .similarity import Match, SearchStats, similarity_search
from .sql import Call, Column, Condition, Query, Star, parse
from .views import DataPointRow, DataPointView, SegmentView, SegmentViewRow

__all__ = [
    "Aggregate",
    "aggregate_by_name",
    "aggregate_names",
    "SegmentCache",
    "QueryEngine",
    "parse_timestamp",
    "MetadataCache",
    "Predicates",
    "RewrittenQuery",
    "rewrite",
    "DATEPART_LEVELS",
    "TIME_LEVELS",
    "datepart_of",
    "is_datepart",
    "floor_to_level",
    "format_bucket",
    "next_boundary",
    "parse_cube_function",
    "rollup_segment",
    "Match",
    "SearchStats",
    "similarity_search",
    "Call",
    "Column",
    "Condition",
    "Query",
    "Star",
    "parse",
    "DataPointRow",
    "DataPointView",
    "SegmentView",
    "SegmentViewRow",
]
