"""User-defined aggregate functions on segments (Algorithm 5).

Aggregates follow the initialize / iterate / finalize structure, with an
additional ``merge`` step so both distributive (SUM, MIN, MAX, COUNT) and
algebraic (AVG) functions [17] can be computed from per-worker partial
states in the distributed setting (the master's *mergeResults*).

``iterate`` receives the decoded model, the inclusive index range the
query's time predicates clip the segment to, the model column, and the
series' scaling constant — results are divided by the scaling constant
here, as the paper specifies (Section 6.1). With constant or linear
models, SUM/MIN/MAX/AVG over an entire segment cost O(1), which is the
source of the Segment View's speed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any

from ..core.errors import QueryError
from ..models.base import FittedModel


class Aggregate(ABC):
    """One segment-level aggregate function (suffix ``_S`` in SQL)."""

    name: str = ""

    @abstractmethod
    def initialize(self) -> Any:
        """A fresh accumulator state."""

    @abstractmethod
    def iterate(
        self,
        state: Any,
        model: FittedModel,
        first: int,
        last: int,
        column: int,
        scaling: float,
    ) -> Any:
        """Fold one segment's clipped index range into the state."""

    @abstractmethod
    def merge(self, state_a: Any, state_b: Any) -> Any:
        """Combine two partial states (distributed merge step)."""

    @abstractmethod
    def finalize(self, state: Any) -> float | int | None:
        """Compute the final value from the accumulated state."""


class CountS(Aggregate):
    name = "COUNT"

    def initialize(self) -> int:
        return 0

    def iterate(self, state, model, first, last, column, scaling) -> int:
        return state + (last - first + 1)

    def merge(self, state_a, state_b) -> int:
        return state_a + state_b

    def finalize(self, state) -> int:
        return state


class SumS(Aggregate):
    name = "SUM"

    def initialize(self) -> float:
        return 0.0

    def iterate(self, state, model, first, last, column, scaling) -> float:
        return state + model.slice_sum(first, last, column) / scaling

    def merge(self, state_a, state_b) -> float:
        return state_a + state_b

    def finalize(self, state) -> float:
        return state


class MinS(Aggregate):
    name = "MIN"

    def initialize(self) -> float | None:
        return None

    def iterate(self, state, model, first, last, column, scaling):
        value = model.slice_min(first, last, column) / scaling
        return value if state is None else min(state, value)

    def merge(self, state_a, state_b):
        if state_a is None:
            return state_b
        if state_b is None:
            return state_a
        return min(state_a, state_b)

    def finalize(self, state):
        return state


class MaxS(Aggregate):
    name = "MAX"

    def initialize(self) -> float | None:
        return None

    def iterate(self, state, model, first, last, column, scaling):
        value = model.slice_max(first, last, column) / scaling
        return value if state is None else max(state, value)

    def merge(self, state_a, state_b):
        if state_a is None:
            return state_b
        if state_b is None:
            return state_a
        return max(state_a, state_b)

    def finalize(self, state):
        return state


class AvgS(Aggregate):
    """Algebraic: carries (sum, count) and divides at finalize."""

    name = "AVG"

    def initialize(self) -> tuple[float, int]:
        return (0.0, 0)

    def iterate(self, state, model, first, last, column, scaling):
        total, count = state
        total += model.slice_sum(first, last, column) / scaling
        count += last - first + 1
        return (total, count)

    def merge(self, state_a, state_b):
        return (state_a[0] + state_b[0], state_a[1] + state_b[1])

    def finalize(self, state):
        total, count = state
        return total / count if count else None


_AGGREGATES: dict[str, Aggregate] = {
    aggregate.name: aggregate
    for aggregate in (CountS(), SumS(), MinS(), MaxS(), AvgS())
}


def aggregate_by_name(name: str) -> Aggregate:
    """Look up an aggregate by base name (``SUM``) or suffixed (``SUM_S``)."""
    base = name.upper()
    if base.endswith("_S"):
        base = base[:-2]
    try:
        return _AGGREGATES[base]
    except KeyError:
        raise QueryError(f"unknown aggregate function {name!r}") from None


def aggregate_names() -> list[str]:
    return sorted(_AGGREGATES)
