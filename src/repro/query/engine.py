"""The query engine (Algorithms 5 and 6).

Executes the supported SQL subset — or the equivalent programmatic calls —
against a segment store:

1. *Rewriting*: Tid and dimension-member predicates become Gids
   (Section 6.2) so the store scans only relevant partitions.
2. *Initialize/iterate*: aggregates fold decoded models over the clipped
   index range of every Segment View row; time rollups walk calendar
   boundaries per segment (Algorithm 6); Data Point View queries
   reconstruct values first.
3. *Finalize*: algebraic functions compute their final value, results are
   shaped into rows.

All aggregate results are divided by each series' scaling constant
during iterate, as the paper specifies.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.errors import QueryError
from ..models.registry import ModelRegistry
from ..obs import SpanRecorder, annotate, get_registry, span
from ..storage.interface import Storage
from . import analytics
from .aggregates import Aggregate, aggregate_by_name
from .cache import SegmentCache
from .columnar import compare as _compare
from .columnar import iter_blocks
from .columnar import point_mask as _point_mask
from .metadata import MetadataCache
from .rewriter import (
    Predicates,
    PushdownDecision,
    RewrittenQuery,
    decide_pushdown,
    rewrite,
)
from .rollup import format_bucket, parse_cube_function, rollup_segment
from .sql import (
    Call,
    Column,
    Condition,
    Forecast,
    Query,
    Star,
    apply_as_of,
    parse,
    parse_timestamp,
)
from .views import DataPointRow, DataPointView, SegmentView

__all__ = [
    "QueryEngine",
    "PartialResult",
    "merge_partial_results",
    "parse_timestamp",
    "EXPLAIN_ANALYZE_RE",
]

_NUMPY_LEVEL_UNIT = {
    "MINUTE": "m",
    "HOUR": "h",
    "DAY": "D",
    "MONTH": "M",
    "YEAR": "Y",
}

#: ``EXPLAIN ANALYZE <statement>`` prefix (the profiled execution mode).
EXPLAIN_ANALYZE_RE = re.compile(
    r"^\s*EXPLAIN\s+ANALYZE\s+(?P<statement>.+)$", re.IGNORECASE | re.DOTALL
)


class QueryEngine:
    """SQL and programmatic query execution over one segment store."""

    def __init__(
        self,
        storage: Storage,
        registry: ModelRegistry,
        cache_capacity: int = 4096,
        columnar: bool = True,
        error_bound: float = 0.0,
    ) -> None:
        self._storage = storage
        self._registry = registry
        self._segment_cache = SegmentCache(registry, cache_capacity)
        self._metadata: MetadataCache | None = None
        self._metadata_lock = threading.Lock()
        # Execution strategy only: the columnar path runs over
        # (ticks × series) blocks, the row path one value at a time.
        # Plans (pushdown decisions included) are shared, and both
        # strategies fold with identical arithmetic and order, so
        # results are bit-identical either way.
        self._columnar = columnar
        # The ingestion-time relative error bound (percent). Analytics
        # propagates it into forecast intervals and anomaly tolerances;
        # the bound is not persisted per segment, so the opener passes
        # its configuration's value down.
        self._error_bound = error_bound

    @property
    def columnar(self) -> bool:
        """Whether the block (columnar) execution strategy is active."""
        return self._columnar

    @property
    def error_bound(self) -> float:
        """The relative error bound (percent) analytics assumes."""
        return self._error_bound

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def sql(
        self,
        text: str,
        *,
        as_of: int | None = None,
        columnar: bool | None = None,
    ) -> list[dict]:
        """Parse and execute one SQL statement.

        ``as_of`` bounds the read at a knowledge time, equivalent to an
        ``AS OF`` clause in the statement (both may be given if they
        agree). ``columnar`` overrides the engine's execution strategy
        for this statement only; None keeps the configured default.
        ``EXPLAIN ANALYZE <statement>`` executes the statement and
        returns its per-stage time/row breakdown instead of its rows
        (see :meth:`explain_analyze`).
        """
        explain = EXPLAIN_ANALYZE_RE.match(text)
        if explain is not None:
            return self.explain_analyze(
                explain.group("statement"), as_of=as_of, columnar=columnar
            )
        with span("parse"):
            query = apply_as_of(parse(text), as_of)
        return self.execute(query, columnar=columnar)

    def explain_analyze(
        self,
        text: str,
        *,
        as_of: int | None = None,
        columnar: bool | None = None,
    ) -> list[dict]:
        """Execute ``text`` and report where the time and rows went.

        Returns one row per engine stage — ``parse``, ``plan``, ``scan``,
        ``finalize`` — with elapsed milliseconds, the row/segment counts
        the stage handled, and push-down details (partitions scanned vs
        pruned, segment-cache hits vs decodes), followed by a ``total``
        row. The statement really runs: timings are measurements, not
        estimates.
        """
        hits_before, misses_before = self.cache_stats
        recorder = SpanRecorder("query")
        with recorder:
            with span("parse"):
                query = apply_as_of(parse(text), as_of)
            rows = self.execute(query, columnar=columnar)
        hits_after, misses_after = self.cache_stats
        report = []
        for depth, stage in recorder.root.walk():
            if depth == 0:
                continue  # the root is reported as the "total" row below
            meta = dict(stage.meta)
            if stage.name == "scan":
                meta.setdefault("cache_hits", hits_after - hits_before)
                meta.setdefault("decoded", misses_after - misses_before)
            report.append(
                {
                    "stage": ("  " * (depth - 1)) + stage.name,
                    "ms": round(stage.elapsed * 1000.0, 3),
                    "rows": meta.pop("rows", None),
                    "detail": " ".join(
                        f"{key}={value}" for key, value in meta.items()
                    ),
                }
            )
        report.append(
            {
                "stage": "total",
                "ms": round(recorder.root.elapsed * 1000.0, 3),
                "rows": len(rows),
                "detail": "",
            }
        )
        return report

    def refresh_metadata(self) -> None:
        """Reload the metadata cache after new time series were added."""
        with self._metadata_lock:
            self._metadata = MetadataCache(self._storage)

    def invalidate_caches(self) -> None:
        """Drop decoded models and the metadata cache.

        Wired to the ingestion flush hook (see
        :meth:`repro.modelardb.ModelarDB.add_flush_listener`) so an
        engine shared by concurrent server threads never serves decoded
        models or series metadata that predate a bulk write.
        """
        self._segment_cache.invalidate()
        with self._metadata_lock:
            self._metadata = None

    def aggregate(
        self,
        function: str,
        tids: Iterable[int] | None = None,
        members: Sequence[tuple[str, str]] = (),
        start_time: int | None = None,
        end_time: int | None = None,
        group_by: Sequence[str] = (),
        view: str = "segment",
        as_of: int | None = None,
    ) -> list[dict]:
        """Programmatic aggregate, e.g. ``aggregate("SUM_S", tids=[1])``."""
        query = Query(
            view=view,
            select=tuple(
                Column(name) for name in group_by
            ) + (Call(function.upper(), "*"),),
            where=_conditions_for(tids, members, start_time, end_time),
            group_by=tuple(group_by),
            as_of=as_of,
        )
        return self.execute(query)

    def points(
        self,
        tids: Iterable[int] | None = None,
        members: Sequence[tuple[str, str]] = (),
        start_time: int | None = None,
        end_time: int | None = None,
        as_of: int | None = None,
    ) -> Iterator[DataPointRow]:
        """Programmatic Data Point View scan."""
        predicates = Predicates(
            tids=frozenset(tids) if tids is not None else None,
            members=tuple(members),
            start_time=start_time,
            end_time=end_time,
        )
        plan = rewrite(predicates, self.metadata, as_of)
        return self._data_point_view().rows(plan)

    @property
    def metadata(self) -> MetadataCache:
        metadata = self._metadata
        if metadata is None:
            # Built under a lock so concurrent server threads share one
            # rebuild instead of racing on partially-initialised state.
            with self._metadata_lock:
                metadata = self._metadata
                if metadata is None:
                    metadata = MetadataCache(self._storage)
                    self._metadata = metadata
        return metadata

    @property
    def segment_cache(self) -> SegmentCache:
        return self._segment_cache

    @property
    def cache_stats(self) -> tuple[int, int]:
        """(hits, misses) of the segment cache."""
        return self._segment_cache.hits, self._segment_cache.misses

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, query: Query, *, columnar: bool | None = None
    ) -> list[dict]:
        # Per-statement strategy override, threaded explicitly — the
        # engine is shared by server threads, so self._columnar is
        # never mutated per query.
        use_columnar = self._columnar if columnar is None else columnar
        registry = get_registry()
        registry.counter("query.statements_total").inc()
        started = time.perf_counter()
        try:
            with span("plan"):
                _validate_analytics(query)
                plan, row_predicates = self._plan(query)
                decisions = decide_pushdown(query)
                self._observe_plan(plan, decisions, registry)
            if query.has_forecast or query.similar_to is not None:
                with span("scan"):
                    rows = self._execute_analytics(query, plan, use_columnar)
                    annotate(rows=len(rows))
            elif query.is_aggregate:
                _validate_aggregate_select(query)
                with span("scan"):
                    if all(d.segment_only for d in decisions):
                        partial = self._accumulate_segment(
                            query, plan, use_columnar
                        )
                    else:
                        partial = self._accumulate_point(
                            query, plan, row_predicates, use_columnar
                        )
                with span("finalize"):
                    rows = partial.finalize()
                    annotate(rows=len(rows))
            else:
                with span("scan"):
                    if query.view == "datapoint":
                        rows = self._execute_point_selection(
                            query, plan, row_predicates, use_columnar
                        )
                    else:
                        rows = self._execute_segment_selection(query, plan)
                    annotate(rows=len(rows))
            registry.counter("query.rows_returned_total").inc(len(rows))
            return rows
        finally:
            registry.histogram("query.execute_seconds").record(
                time.perf_counter() - started
            )

    def _observe_plan(
        self,
        plan: RewrittenQuery,
        decisions: tuple[PushdownDecision, ...],
        registry,
    ) -> None:
        """Record the push-down outcome of one rewritten query."""
        total_gids = len(self.metadata.all_gids())
        scanned = len(plan.gids)
        registry.counter("query.partitions_scanned_total").inc(scanned)
        registry.counter("query.partitions_pruned_total").inc(
            max(total_gids - scanned, 0)
        )
        for decision in decisions:
            registry.counter(
                "query.pushdown_subtrees_total", decision=decision.route
            ).inc()
        annotate(
            partitions=f"{scanned}/{total_gids}",
            tids=len(plan.tids),
            pushdown=",".join(
                f"{decision.subtree}:{decision.route}"
                for decision in decisions
            ),
        )

    def execute_partial(
        self, query: Query, *, columnar: bool | None = None
    ) -> "PartialResult | list[dict]":
        """Worker-side execution: aggregate queries return mergeable
        partial states (the distributed step of Algorithm 5); selections
        return their rows directly."""
        use_columnar = self._columnar if columnar is None else columnar
        _validate_analytics(query)
        plan, row_predicates = self._plan(query)
        if query.has_forecast or query.similar_to is not None:
            # Plain-data rows; the master's merge_analytics_rows
            # re-establishes the single-node total order and top-k.
            return self._execute_analytics(query, plan, use_columnar)
        if not query.is_aggregate:
            if query.view == "datapoint":
                return self._execute_point_selection(
                    query, plan, row_predicates, use_columnar
                )
            return self._execute_segment_selection(query, plan)
        _validate_aggregate_select(query)
        # The same plan-level routing as execute(): workers and the
        # single-node engine take identical pushdown decisions.
        if all(d.segment_only for d in decide_pushdown(query)):
            return self._accumulate_segment(query, plan, use_columnar)
        return self._accumulate_point(
            query, plan, row_predicates, use_columnar
        )

    def _plan(self, query: Query) -> tuple[RewrittenQuery, list[Condition]]:
        tids: frozenset[int] | None = None
        members: list[tuple[str, str]] = []
        start: int | None = None
        end: int | None = None
        point_conditions: list[Condition] = []
        for condition in query.where:
            column = condition.column
            name = column.lower()
            if name == "tid":
                tids = _intersect(tids, _tid_values(condition))
            elif name in ("ts", "timestamp"):
                start, end = _narrow_interval(start, end, condition)
                point_conditions.append(condition)
            elif name in ("starttime", "endtime"):
                start, end = _narrow_interval(start, end, condition)
            elif name == "value":
                point_conditions.append(condition)
            elif name == "anomaly":
                if query.view != "segment":
                    raise QueryError(
                        "Anomaly is a Segment view column; query "
                        "'FROM Segment' to filter on it"
                    )
                if condition.operator != "=" or condition.value not in (0, 1):
                    raise QueryError(
                        "Anomaly predicates support '= 0' and '= 1' only"
                    )
                # Applied during segment selection, after flags are
                # computed; not a storage-level predicate.
            else:
                if condition.operator != "=":
                    raise QueryError(
                        "dimension predicates support '=' only, got "
                        f"{condition.operator!r} on {column!r}"
                    )
                members.append((column, str(condition.value)))
        predicates = Predicates(
            tids=tids,
            members=tuple(members),
            start_time=start,
            end_time=end,
        )
        return rewrite(predicates, self.metadata, query.as_of), point_conditions

    # -- Model-native analytics (FORECAST / SIMILAR TO) --------------------
    def _execute_analytics(
        self, query: Query, plan: RewrittenQuery, columnar: bool
    ) -> list[dict]:
        """One Segment View pass into a signature index, then forecast
        extrapolation or pruned similarity search from model parameters.

        Shared verbatim by both execution modes (the index and kernels
        have a single code path), so row and columnar engines return
        bit-identical analytics rows — the PR 6 contract extends to the
        analytics surface for free.
        """
        registry = get_registry()
        started = time.perf_counter()
        try:
            index = analytics.SignatureIndex(
                self._segment_view().rows(plan)
            )
            if query.has_forecast:
                (item,) = [
                    item
                    for item in query.select
                    if isinstance(item, Forecast)
                ]
                rows = analytics.forecast_rows(
                    index, item.horizon, self._error_bound
                )
                registry.counter("query.analytics_forecasts_total").inc(
                    len(rows)
                )
                annotate(
                    series=len(index.tids),
                    horizon=item.horizon,
                    mode="columnar" if columnar else "row",
                )
                return rows
            k = (
                query.limit
                if query.limit is not None
                else analytics.DEFAULT_SIMILARITY_K
            )
            stats = analytics.SearchStats()
            rows = analytics.similarity_rows(
                index, query.similar_to, k, stats
            )
            registry.counter("query.analytics_similarity_total").inc()
            registry.counter("query.analytics_windows_total").inc(
                stats.windows
            )
            registry.counter("query.analytics_windows_pruned_total").inc(
                stats.windows - stats.verified
            )
            annotate(
                windows=stats.windows,
                verified=stats.verified,
                k=k,
                mode="columnar" if columnar else "row",
            )
            return rows
        finally:
            registry.histogram("query.analytics_seconds").record(
                time.perf_counter() - started
            )

    # -- Segment View aggregates ------------------------------------------
    def _accumulate_segment(
        self, query: Query, plan: RewrittenQuery, columnar: bool
    ) -> "PartialResult":
        """Algorithm 5/6 over stored segments, without materialising
        per-series view rows.

        A group segment is visited once: its model is decoded once and,
        for constant-time models (constant/linear), slice aggregates are
        column-independent, so they are memoised and *shared* across the
        group's member series — aggregate work per segment is O(1) in
        the group size, which is exactly the benefit of executing
        queries on models representing multiple time series.
        """
        calls = _calls(query)
        group_columns = _validated_group_by(query, self.metadata)
        simple: dict[tuple, list] = {}
        cubes: dict[tuple, list] = {}
        specs = [_CallSpec.from_call(call) for call in calls]
        has_cube = any(spec.level is not None for spec in specs)
        use_block_fold = columnar and not has_cube

        metadata = self.metadata
        scalings = metadata.scalings()
        dimension_rows = metadata.dimension_rows()
        tids = set(plan.tids)
        cache = self._segment_cache
        segments_scanned = 0
        rows_skipped = 0
        from .views import _clip

        for segment in self._storage.scan(plan.scan_request()):
            segments_scanned += 1
            clipped = _clip(segment, plan.start_time, plan.end_time)
            if clipped is None:
                continue
            first, last = clipped
            selected = [
                (column, tid)
                for column, tid in enumerate(segment.member_tids)
                if tid in tids
            ]
            if not selected:
                continue
            model = cache.decode(
                segment.mid,
                segment.parameters,
                segment.n_columns,
                segment.length,
            )
            if model.constant_time_aggregates:
                # Answered from model parameters alone: every data point
                # this segment represents for the selected series stays
                # unmaterialised.
                rows_skipped += len(selected) * (last - first + 1)
                if use_block_fold:
                    self._fold_segment_fast(
                        specs, simple, selected, model, first, last,
                        group_columns, scalings, dimension_rows,
                    )
                    continue
                model = _ColumnSharedModel(model)
            for column, tid in selected:
                key = _group_key(
                    tid, dimension_rows.get(tid, {}), group_columns
                )
                scaling = scalings.get(tid, 1.0)
                for index, spec in enumerate(specs):
                    if spec.level is None:
                        states = simple.get(key)
                        if states is None:
                            states = [
                                s.aggregate.initialize() for s in specs
                            ]
                            simple[key] = states
                        states[index] = spec.aggregate.iterate(
                            states[index], model, first, last, column,
                            scaling,
                        )
                    else:
                        buckets = cubes.get(key)
                        if buckets is None:
                            buckets = [{} for _ in specs]
                            cubes[key] = buckets
                        rollup_segment(
                            buckets[index],
                            spec.aggregate,
                            model,
                            segment.start_time,
                            segment.sampling_interval,
                            first,
                            last,
                            column,
                            scaling,
                            spec.level,
                        )
        registry = get_registry()
        registry.counter("query.segments_scanned_total").inc(segments_scanned)
        registry.counter("query.rows_skipped_materialization_total").inc(
            rows_skipped
        )
        annotate(
            segments=segments_scanned,
            rows_skipped_materialization=rows_skipped,
            mode="columnar" if columnar else "row",
        )
        return PartialResult(specs, group_columns, simple, cubes)

    def _fold_segment_fast(
        self,
        specs: list["_CallSpec"],
        simple: dict[tuple, list],
        selected: list[tuple[int, int]],
        model,
        first: int,
        last: int,
        group_columns: tuple[str, ...],
        scalings: dict[int, float],
        dimension_rows: dict[int, dict[str, str]],
    ) -> None:
        """Vectorised constant-time fold of one segment (columnar mode).

        The slice aggregate of a constant/linear group model is column
        independent, so it is computed once and divided by all member
        scalings in one numpy operation. Each element of the result is
        ``raw / scaling`` in float64 — the very division the row path
        performs per series — and ``tolist()`` hands back the identical
        Python floats, so folding them with the same ``min``/``max``/
        ``+`` arithmetic keeps both modes bit-identical.
        """
        ticks = last - first + 1
        scale = np.array(
            [scalings.get(tid, 1.0) for _, tid in selected]
        )
        folds: list[list[float] | None] = []
        for spec in specs:
            name = spec.aggregate.name
            if name == "COUNT":
                folds.append(None)
            elif name in ("SUM", "AVG"):
                folds.append((model.slice_sum(first, last, 0) / scale).tolist())
            elif name == "MIN":
                folds.append((model.slice_min(first, last, 0) / scale).tolist())
            elif name == "MAX":
                folds.append((model.slice_max(first, last, 0) / scale).tolist())
            else:  # pragma: no cover - the registry only has the five above
                folds.append(None)
        for position, (column, tid) in enumerate(selected):
            key = _group_key(tid, dimension_rows.get(tid, {}), group_columns)
            states = simple.get(key)
            if states is None:
                states = [s.aggregate.initialize() for s in specs]
                simple[key] = states
            for index, spec in enumerate(specs):
                name = spec.aggregate.name
                if name == "COUNT":
                    states[index] = states[index] + ticks
                elif name == "SUM":
                    states[index] = states[index] + folds[index][position]
                elif name == "MIN":
                    value = folds[index][position]
                    state = states[index]
                    states[index] = (
                        value if state is None else min(state, value)
                    )
                elif name == "MAX":
                    value = folds[index][position]
                    state = states[index]
                    states[index] = (
                        value if state is None else max(state, value)
                    )
                elif name == "AVG":
                    total, count = states[index]
                    states[index] = (
                        total + folds[index][position], count + ticks
                    )
                else:  # pragma: no cover - defensive; registry is closed
                    states[index] = spec.aggregate.iterate(
                        states[index], model, first, last, column,
                        scalings.get(tid, 1.0),
                    )

    # -- Data Point View aggregates ----------------------------------------
    def _accumulate_point(
        self,
        query: Query,
        plan: RewrittenQuery,
        point_conditions: list[Condition],
        columnar: bool,
    ) -> "PartialResult":
        calls = _calls(query)
        group_columns = _validated_group_by(query, self.metadata)
        specs = [_CallSpec.from_call(call) for call in calls]
        simple: dict[tuple, list] = {}
        cubes: dict[tuple, list] = {}

        for tid, dimensions, timestamps, values in self._series_arrays(
            plan, columnar
        ):
            mask = _point_mask(timestamps, values, point_conditions)
            if mask is not None:
                timestamps = timestamps[mask]
                values = values[mask]
            if len(values) == 0:
                continue
            key = _group_key(tid, dimensions, group_columns)
            for index, spec in enumerate(specs):
                if spec.level is None:
                    states = simple.setdefault(
                        key, [spec.aggregate.initialize() for spec in specs]
                    )
                    states[index] = spec.aggregate.merge(
                        states[index], _numpy_state(spec.aggregate, values)
                    )
                else:
                    buckets = cubes.setdefault(key, [{} for _ in specs])
                    _numpy_rollup(
                        buckets[index], spec, timestamps, values
                    )
        return PartialResult(specs, group_columns, simple, cubes)

    def _series_arrays(
        self, plan: RewrittenQuery, columnar: bool
    ) -> Iterator[tuple[int, dict[str, str], np.ndarray, np.ndarray]]:
        """(tid, dimensions, timestamps, scaled values) per series slice.

        Both strategies visit the same (segment, series) pairs in the
        same order and produce elementwise bit-identical arrays; the
        columnar strategy just decodes each segment once into a block
        instead of regenerating the reconstruction per member column.
        """
        if columnar:
            scalings = self.metadata.scalings()
            dimension_rows = self.metadata.dimension_rows()
            for block in iter_blocks(self._storage, self._segment_cache, plan):
                for column, tid in block.series:
                    yield (
                        tid,
                        dimension_rows.get(tid, {}),
                        block.timestamps,
                        block.column(column, scalings.get(tid, 1.0)),
                    )
            return
        for row, timestamps, values in self._data_point_view().arrays(plan):
            yield row.tid, row.dimensions, timestamps, values

    # -- Selections ---------------------------------------------------------
    def _execute_point_selection(
        self,
        query: Query,
        plan: RewrittenQuery,
        point_conditions: list[Condition],
        columnar: bool,
    ) -> list[dict]:
        columns = _selection_columns(
            query, ["Tid", "TS", "Value"], self.metadata
        )
        if columnar:
            return self._point_selection_columnar(
                columns, plan, point_conditions
            )
        results = []
        for point in self._data_point_view().rows(plan):
            if not _point_matches(point, point_conditions):
                continue
            row = {}
            for column in columns:
                name = column.lower()
                if name == "tid":
                    row[column] = point.tid
                elif name == "ts":
                    row[column] = point.timestamp
                elif name == "value":
                    row[column] = point.value
                else:
                    row[column] = point.dimensions.get(column)
            results.append(row)
        return results

    def _point_selection_columnar(
        self,
        columns: list[str],
        plan: RewrittenQuery,
        point_conditions: list[Condition],
    ) -> list[dict]:
        """Block-at-a-time point selection.

        WHERE evaluates as one boolean mask per (block, series) instead
        of one comparison per point, and the surviving timestamps/values
        convert to Python scalars in two batched ``tolist()`` calls. Row
        dicts come out in the row path's exact order: segment by segment,
        member series by member series, tick ascending.
        """
        scalings = self.metadata.scalings()
        dimension_rows = self.metadata.dimension_rows()
        results: list[dict] = []
        for block in iter_blocks(self._storage, self._segment_cache, plan):
            for column_index, tid in block.series:
                values = block.column(column_index, scalings.get(tid, 1.0))
                mask = _point_mask(block.timestamps, values, point_conditions)
                timestamps = block.timestamps
                if mask is not None:
                    timestamps = timestamps[mask]
                    values = values[mask]
                if len(values) == 0:
                    continue
                dimensions = dimension_rows.get(tid, {})
                timestamp_list = timestamps.tolist()
                value_list = values.tolist()
                for position in range(len(value_list)):
                    row = {}
                    for column in columns:
                        name = column.lower()
                        if name == "tid":
                            row[column] = tid
                        elif name == "ts":
                            row[column] = timestamp_list[position]
                        elif name == "value":
                            row[column] = value_list[position]
                        else:
                            row[column] = dimensions.get(column)
                    results.append(row)
        return results

    def _execute_segment_selection(
        self, query: Query, plan: RewrittenQuery
    ) -> list[dict]:
        columns = _selection_columns(
            query,
            ["Tid", "StartTime", "EndTime", "SI", "Mid"],
            self.metadata,
            extra=("Anomaly",),
        )
        anomaly_conditions = [
            condition
            for condition in query.where
            if condition.column.lower() == "anomaly"
        ]
        wants_flags = anomaly_conditions or any(
            column.lower() == "anomaly" for column in columns
        )
        view_rows = list(self._segment_view().rows(plan))
        flagged: set[tuple[int, int]] = set()
        if wants_flags:
            index = analytics.SignatureIndex(view_rows)
            flagged = analytics.anomaly_starts(index, self._error_bound)
            get_registry().counter(
                "query.analytics_anomalies_total"
            ).inc(len(flagged))
            annotate(anomalies=len(flagged))
        results = []
        for view_row in view_rows:
            row = view_row.row
            values = {
                "tid": row.tid,
                "starttime": row.start_time,
                "endtime": row.end_time,
                "si": row.sampling_interval,
                "mid": row.mid,
                "anomaly": int((row.tid, row.start_time) in flagged),
            }
            if any(
                values["anomaly"] != condition.value
                for condition in anomaly_conditions
            ):
                continue
            shaped = {}
            for column in columns:
                name = column.lower()
                if name in values:
                    shaped[column] = values[name]
                else:
                    shaped[column] = row.dimensions.get(column)
            results.append(shaped)
        return results

    # ------------------------------------------------------------------
    def _segment_view(self) -> SegmentView:
        return SegmentView(self._storage, self._segment_cache, self.metadata)

    def _data_point_view(self) -> DataPointView:
        return DataPointView(
            self._storage, self._segment_cache, self.metadata
        )


class _ColumnSharedModel:
    """Memoising proxy for constant-time models within one segment.

    Constant and linear group models produce the same estimate for every
    member series at a timestamp, so slice aggregates do not depend on
    the column — computing them once per segment and sharing the result
    across the group's series makes aggregate cost O(1) in group size.
    """

    __slots__ = ("_model", "_memo")

    constant_time_aggregates = True

    def __init__(self, model) -> None:
        self._model = model
        self._memo: dict[tuple, float] = {}

    @property
    def length(self) -> int:
        return self._model.length

    @property
    def n_columns(self) -> int:
        return self._model.n_columns

    def values(self):
        return self._model.values()

    def value_at(self, index: int, column: int) -> float:
        return self._model.value_at(index, 0)

    def column_values(self, column: int):
        return self._model.column_values(column)

    def slice_sum(self, first: int, last: int, column: int) -> float:
        key = ("sum", first, last)
        value = self._memo.get(key)
        if value is None:
            value = self._model.slice_sum(first, last, 0)
            self._memo[key] = value
        return value

    def slice_min(self, first: int, last: int, column: int) -> float:
        key = ("min", first, last)
        value = self._memo.get(key)
        if value is None:
            value = self._model.slice_min(first, last, 0)
            self._memo[key] = value
        return value

    def slice_max(self, first: int, last: int, column: int) -> float:
        key = ("max", first, last)
        value = self._memo.get(key)
        if value is None:
            value = self._model.slice_max(first, last, 0)
            self._memo[key] = value
        return value


# ----------------------------------------------------------------------
# Partial results (distributed merge step of Algorithm 5)
# ----------------------------------------------------------------------
class PartialResult:
    """Mergeable per-worker aggregate state.

    Instances hold only plain data (tuples, dicts, numbers) plus
    :class:`_CallSpec`, which pickles by aggregate name — so a partial
    can be returned from a worker process over the cluster RPC layer.
    """

    def __init__(
        self,
        specs: list["_CallSpec"],
        group_columns: tuple[str, ...],
        simple: dict[tuple, list],
        cubes: dict[tuple, list],
    ) -> None:
        self.specs = specs
        self.group_columns = group_columns
        self.simple = simple
        self.cubes = cubes

    def merge(self, other: "PartialResult") -> None:
        """Fold another worker's partial state into this one in place."""
        if [s.label for s in other.specs] != [s.label for s in self.specs]:
            raise QueryError("cannot merge partials of different queries")
        for key, states in other.simple.items():
            mine = self.simple.get(key)
            if mine is None:
                self.simple[key] = list(states)
                continue
            for index, spec in enumerate(self.specs):
                mine[index] = spec.aggregate.merge(mine[index], states[index])
        for key, buckets_per_spec in other.cubes.items():
            mine = self.cubes.setdefault(key, [{} for _ in self.specs])
            for index, spec in enumerate(self.specs):
                if spec.level is None:
                    continue
                for bucket, state in buckets_per_spec[index].items():
                    existing = mine[index].get(bucket)
                    if existing is None:
                        mine[index][bucket] = state
                    else:
                        mine[index][bucket] = spec.aggregate.merge(
                            existing, state
                        )

    def finalize(self) -> list[dict]:
        return _shape_results(
            self.specs, self.group_columns, self.simple, self.cubes
        )


def merge_partial_results(partials: list[PartialResult]) -> list[dict]:
    """The master's mergeResults + finalize over worker partials."""
    if not partials:
        return []
    combined = partials[0]
    for partial in partials[1:]:
        combined.merge(partial)
    return combined.finalize()


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
class _CallSpec:
    """A resolved select-list aggregate call.

    Pickles by aggregate *name* rather than by aggregate object, so
    :class:`PartialResult` instances can cross process boundaries (the
    cluster RPC layer) without serialising engine internals — the
    receiving side re-resolves the aggregate from its own registry.
    """

    def __init__(self, label: str, aggregate: Aggregate, level: str | None):
        self.label = label
        self.aggregate = aggregate
        self.level = level

    @classmethod
    def from_call(cls, call: Call) -> "_CallSpec":
        label = f"{call.function}({call.argument})"
        if call.function.startswith("CUBE_"):
            aggregate_name, level = parse_cube_function(call.function)
            return cls(label, aggregate_by_name(aggregate_name), level)
        return cls(label, aggregate_by_name(call.function), None)

    def __getstate__(self) -> dict:
        return {
            "label": self.label,
            "aggregate": self.aggregate.name,
            "level": self.level,
        }

    def __setstate__(self, state: dict) -> None:
        self.label = state["label"]
        self.aggregate = aggregate_by_name(state["aggregate"])
        self.level = state["level"]


def _calls(query: Query) -> list[Call]:
    return [item for item in query.select if isinstance(item, Call)]


def _conditions_for(
    tids: Iterable[int] | None,
    members: Sequence[tuple[str, str]],
    start_time: int | None,
    end_time: int | None,
) -> tuple[Condition, ...]:
    conditions: list[Condition] = []
    if tids is not None:
        conditions.append(Condition("Tid", "IN", tuple(tids)))
    for column, member in members:
        conditions.append(Condition(column, "=", member))
    if start_time is not None:
        conditions.append(Condition("TS", ">=", start_time))
    if end_time is not None:
        conditions.append(Condition("TS", "<=", end_time))
    return tuple(conditions)


def _tid_values(condition: Condition) -> frozenset[int]:
    try:
        if condition.operator == "=":
            return frozenset({int(condition.value)})
        if condition.operator == "IN":
            return frozenset(int(v) for v in condition.value)
    except (TypeError, ValueError):
        raise QueryError(
            f"Tid predicates require integer values, "
            f"got {condition.value!r}"
        ) from None
    raise QueryError(
        f"Tid predicates support '=' and 'IN', got {condition.operator!r}"
    )


def _intersect(
    current: frozenset[int] | None, new: frozenset[int]
) -> frozenset[int]:
    return new if current is None else current & new


def _narrow_interval(
    start: int | None, end: int | None, condition: Condition
) -> tuple[int | None, int | None]:
    value = parse_timestamp(condition.value)
    operator = condition.operator
    if operator == ">=":
        start = value if start is None else max(start, value)
    elif operator == ">":
        start = value + 1 if start is None else max(start, value + 1)
    elif operator == "<=":
        end = value if end is None else min(end, value)
    elif operator == "<":
        end = value - 1 if end is None else min(end, value - 1)
    elif operator == "=":
        start = value if start is None else max(start, value)
        end = value if end is None else min(end, value)
    else:
        raise QueryError(f"unsupported TS operator {operator!r}")
    return start, end


def _validate_analytics(query: Query) -> None:
    """Shape rules of the analytics surface, enforced before planning.

    FORECAST stands alone in its select list (its result schema is
    fixed), SIMILAR TO selects ``*`` (its result schema is fixed too),
    and LIMIT is similarity's k — nothing else is ordered, so nothing
    else may be truncated.
    """
    if query.has_forecast:
        if len(query.select) != 1:
            raise QueryError(
                "FORECAST cannot be combined with other select items; "
                f"its result schema is fixed to {analytics.FORECAST_COLUMNS}"
            )
        if query.view != "datapoint":
            raise QueryError(
                "FORECAST extrapolates data points; query 'FROM DataPoint'"
            )
        if query.group_by:
            raise QueryError("FORECAST does not support GROUP BY")
        if query.similar_to is not None:
            raise QueryError("FORECAST and SIMILAR TO cannot be combined")
    if query.similar_to is not None:
        if len(query.similar_to) < 1:
            raise QueryError(
                "the search pattern must be a non-empty sequence"
            )
        if query.select != (Star(),):
            raise QueryError(
                "SIMILAR TO returns rows "
                f"{analytics.SIMILARITY_COLUMNS}; select '*'"
            )
        if query.group_by:
            raise QueryError("SIMILAR TO does not support GROUP BY")
    if query.has_forecast or query.similar_to is not None:
        for condition in query.where:
            if condition.column.lower() == "value":
                raise QueryError(
                    "Value predicates filter reconstructed points; "
                    "analytics queries never materialize them — "
                    "restrict by Tid, TS or dimension members instead"
                )
        if query.similar_to is not None:
            for condition in query.where:
                if condition.column.lower() in (
                    "ts", "timestamp", "starttime", "endtime",
                ):
                    raise QueryError(
                        "SIMILAR TO searches whole series; restrict by "
                        "Tid or dimension members instead of TS"
                    )
    if query.limit is not None and query.similar_to is None:
        raise QueryError("LIMIT is only supported with SIMILAR TO")


def _validate_aggregate_select(query: Query) -> None:
    """Plain columns in an aggregate select list must be grouped on."""
    for item in query.select:
        if isinstance(item, Star):
            raise QueryError("cannot mix '*' with aggregate functions")
        if isinstance(item, Column) and item.name not in query.group_by:
            raise QueryError(
                f"column {item.name!r} must appear in GROUP BY when "
                "aggregates are selected"
            )


def _validated_group_by(
    query: Query, metadata: MetadataCache
) -> tuple[str, ...]:
    dimension_columns = set(metadata.dimension_columns())
    for column in query.group_by:
        if column.lower() != "tid" and column not in dimension_columns:
            raise QueryError(f"cannot GROUP BY unknown column {column!r}")
    return query.group_by


def _group_key(
    tid: int, dimensions: dict[str, str], group_columns: tuple[str, ...]
) -> tuple:
    key = []
    for column in group_columns:
        if column.lower() == "tid":
            key.append(tid)
        else:
            key.append(dimensions.get(column))
    return tuple(key)


def _selection_columns(
    query: Query,
    default: list[str],
    metadata: MetadataCache,
    extra: tuple[str, ...] = (),
) -> list[str]:
    """Validated output columns. ``extra`` names computed columns
    (``Anomaly``) selectable explicitly but excluded from ``*``."""
    if any(isinstance(item, Star) for item in query.select):
        return default + metadata.dimension_columns()
    known = {name.lower() for name in default}
    known |= {name.lower() for name in extra}
    known |= {name.lower() for name in metadata.dimension_columns()}
    columns = []
    for item in query.select:
        if isinstance(item, Column):
            if item.name.lower() not in known:
                raise QueryError(f"unknown column {item.name!r}")
            columns.append(item.name)
        else:
            raise QueryError("cannot mix aggregates and plain columns")
    return columns


def _shape_results(
    specs: list[_CallSpec],
    group_columns: tuple[str, ...],
    simple: dict[tuple, list],
    cubes: dict[tuple, list],
) -> list[dict]:
    results = []
    keys = sorted(
        set(simple) | set(cubes), key=lambda key: tuple(map(str, key))
    )
    has_cube = any(spec.level is not None for spec in specs)
    if not keys and not group_columns and not has_cube:
        # SQL semantics: an ungrouped aggregate over no rows still yields
        # one row (COUNT 0, the others NULL).
        return [
            {
                spec.label: spec.aggregate.finalize(spec.aggregate.initialize())
                for spec in specs
            }
        ]
    for key in keys:
        base = dict(zip(group_columns, key))
        if not has_cube:
            states = simple.get(key)
            row = dict(base)
            for index, spec in enumerate(specs):
                state = (
                    states[index]
                    if states is not None
                    else spec.aggregate.initialize()
                )
                row[spec.label] = spec.aggregate.finalize(state)
            results.append(row)
            continue
        # With cube calls, emit one row per (group key, bucket).
        buckets_per_spec = cubes.get(key, [{} for _ in specs])
        all_buckets = sorted(
            {
                bucket
                for index, spec in enumerate(specs)
                if spec.level is not None
                for bucket in buckets_per_spec[index]
            }
        )
        simple_states = simple.get(key)
        for bucket in all_buckets:
            row = dict(base)
            for index, spec in enumerate(specs):
                if spec.level is None:
                    state = (
                        simple_states[index]
                        if simple_states is not None
                        else spec.aggregate.initialize()
                    )
                    row[spec.label] = spec.aggregate.finalize(state)
                else:
                    state = buckets_per_spec[index].get(bucket)
                    if state is None:
                        continue
                    row[spec.level] = format_bucket(bucket, spec.level)
                    row[spec.label] = spec.aggregate.finalize(state)
            results.append(row)
    return results


def _point_matches(point: DataPointRow, conditions: list[Condition]) -> bool:
    for condition in conditions:
        name = condition.column.lower()
        if name in ("ts", "timestamp"):
            actual = point.timestamp
            literal = parse_timestamp(condition.value)
        else:
            actual = point.value
            literal = float(condition.value)
        array = np.array([actual])
        if not bool(_compare(array, condition.operator, literal)[0]):
            return False
    return True


def _numpy_state(aggregate: Aggregate, values: np.ndarray):
    """Partial state for one reconstructed slice (Data Point View path)."""
    name = aggregate.name
    if name == "COUNT":
        return int(len(values))
    if name == "SUM":
        return float(values.sum())
    if name == "MIN":
        return float(values.min())
    if name == "MAX":
        return float(values.max())
    if name == "AVG":
        return (float(values.sum()), int(len(values)))
    raise QueryError(f"aggregate {name!r} not supported on the Data Point View")


def _numpy_rollup(
    buckets: dict[int, object],
    spec: _CallSpec,
    timestamps: np.ndarray,
    values: np.ndarray,
) -> None:
    """Vectorised calendar bucketing for Data Point View rollups."""
    from .rollup import DATEPART_LEVELS, datepart_of

    part_level = DATEPART_LEVELS.get(spec.level)
    unit = _NUMPY_LEVEL_UNIT[part_level if part_level else spec.level]
    moments = timestamps.astype("datetime64[ms]")
    starts = (
        moments.astype(f"datetime64[{unit}]")
        .astype("datetime64[ms]")
        .astype(np.int64)
    )
    unique, inverse = np.unique(starts, return_inverse=True)
    for position, bucket in enumerate(unique):
        slice_values = values[inverse == position]
        state = _numpy_state(spec.aggregate, slice_values)
        key = (
            int(bucket)
            if part_level is None
            else datepart_of(int(bucket), spec.level)
        )
        existing = buckets.get(key)
        if existing is None:
            buckets[key] = state
        else:
            buckets[key] = spec.aggregate.merge(existing, state)
