"""The in-memory metadata cache of the architecture (Fig. 4).

Loaded from the Time Series table once per engine; provides the
Gid <-> Tid mappings and the member -> Gid index the query rewriter needs
(Section 6.2), plus the per-Tid scaling constants and denormalised
dimension rows that get hash-joined onto view rows (Section 6.1 — here as
plain dict lookups keyed by the integer Tid, the array-based join the
paper describes).
"""

from __future__ import annotations

from ..core.errors import QueryError
from ..storage.interface import Storage


class MetadataCache:
    """Immutable snapshot of the Time Series table for query processing."""

    def __init__(self, storage: Storage) -> None:
        self._records = {record.tid: record for record in storage.time_series()}
        if not self._records:
            raise QueryError("the Time Series table is empty")
        self._groups = storage.group_metadata()
        self._tid_to_gid = {
            record.tid: record.gid for record in self._records.values()
        }
        self._member_to_tids: dict[tuple[str, str], set[int]] = {}
        for record in self._records.values():
            for column, member in record.dimensions.items():
                key = (column, member)
                self._member_to_tids.setdefault(key, set()).add(record.tid)
        # The cache is immutable: precompute the per-query lookups.
        self._scalings = {
            tid: record.scaling for tid, record in self._records.items()
        }
        self._dimension_rows = {
            tid: record.dimensions for tid, record in self._records.items()
        }

    # ------------------------------------------------------------------
    def all_tids(self) -> set[int]:
        return set(self._records)

    def all_gids(self) -> set[int]:
        return set(self._groups)

    def gid_of(self, tid: int) -> int:
        try:
            return self._tid_to_gid[tid]
        except KeyError:
            raise QueryError(f"unknown time series id {tid}") from None

    def gids_of(self, tids: set[int]) -> set[int]:
        return {self.gid_of(tid) for tid in tids}

    def tids_of_gid(self, gid: int) -> tuple[int, ...]:
        try:
            return self._groups[gid][0]
        except KeyError:
            raise QueryError(f"unknown group id {gid}") from None

    def sampling_interval(self, gid: int) -> int:
        return self._groups[gid][1]

    def scaling(self, tid: int) -> float:
        return self._records[tid].scaling

    def scalings(self) -> dict[int, float]:
        return self._scalings

    def dimension_row(self, tid: int) -> dict[str, str]:
        return self._records[tid].dimensions

    def dimension_rows(self) -> dict[int, dict[str, str]]:
        return self._dimension_rows

    def dimension_columns(self) -> list[str]:
        for record in self._records.values():
            return list(record.dimensions)
        return []

    def tids_with_member(self, column: str, member: str) -> set[int]:
        """Time series whose denormalised ``column`` equals ``member``."""
        if column not in self.dimension_columns():
            raise QueryError(f"unknown dimension column {column!r}")
        return set(self._member_to_tids.get((column, member), set()))
