"""Columnar read-path kernels: block decode and vectorized WHERE.

The read-side mirror of the columnar ingestion path (PR 4's batch
kernels): instead of restoring segments to data points row at a time,
each stored segment is decoded once into a ``(ticks × series)`` numpy
block — PMC-Mean level fill, Swing linear ramp, Gorilla array-at-once
unpack (:meth:`~repro.models.base.FittedModel.values_block`) — and WHERE
predicates evaluate as vectorized masks over whole blocks.

Everything here is bit-identical to the row path by construction: blocks
slice the same reconstruction the row path produces, grid restoration
uses the same ``start + index * SI`` arithmetic on int64, and scaling
divides elementwise exactly as ``column_values(column) / scaling`` does.
The equivalence suite (``tests/test_columnar_equivalence.py``) locks
this down.
"""

from __future__ import annotations

import time
from typing import Iterator, NamedTuple

import numpy as np

from ..core.errors import QueryError
from ..core.segment import SegmentGroup
from ..obs import get_registry
from ..storage.interface import Storage
from .cache import SegmentCache
from .rewriter import RewrittenQuery
from .sql import Condition, parse_timestamp
from .views import _clip


class SegmentBlock(NamedTuple):
    """One stored segment decoded to a ``(ticks × series)`` block.

    ``values`` holds the *raw* (unscaled) reconstruction for every model
    column over the clipped tick range; ``series`` lists the
    ``(model column, Tid)`` pairs the plan's Tid filter kept, in member
    order — the same order :func:`repro.core.segment.explode` yields
    rows. Per-series scaling is applied when a column is read
    (:meth:`column`), mirroring the row path's divide-then-use order.
    """

    segment: SegmentGroup
    first: int  # first model index inside the query interval (inclusive)
    last: int  # last model index inside the query interval (inclusive)
    series: tuple[tuple[int, int], ...]  # (model column, tid), member order
    timestamps: np.ndarray  # int64 grid timestamps, one per tick
    values: np.ndarray  # (ticks, n_columns) float64, unscaled

    def column(self, column: int, scaling: float) -> np.ndarray:
        """One series' scaled values over the block's tick range.

        Elementwise this is exactly the row path's
        ``model.column_values(column) / scaling`` restricted to the
        clipped range, so the floats are bit-identical.
        """
        return self.values[:, column] / scaling


def iter_blocks(
    storage: Storage,
    cache: SegmentCache,
    plan: RewrittenQuery,
) -> Iterator[SegmentBlock]:
    """Decode every planned segment into a block, one storage pass.

    Grid restoration happens here: each block carries the int64
    timestamps ``start + index * SI`` for its clipped index range —
    the same arithmetic the row path applies per point. Decode count
    and time land in the ``query.columnar_blocks_total`` /
    ``query.block_decode_seconds`` instruments, batched per scan.
    """
    tids = set(plan.tids)
    blocks = 0
    decode_seconds = 0.0
    for segment in storage.scan(plan.scan_request()):
        clipped = _clip(segment, plan.start_time, plan.end_time)
        if clipped is None:
            continue
        first, last = clipped
        series = tuple(
            (column, tid)
            for column, tid in enumerate(segment.member_tids)
            if tid in tids
        )
        if not series:
            continue
        started = time.perf_counter()
        model = cache.decode(
            segment.mid,
            segment.parameters,
            segment.n_columns,
            segment.length,
        )
        values = model.values_block(first, last)
        decode_seconds += time.perf_counter() - started
        timestamps = segment.start_time + (
            np.arange(first, last + 1, dtype=np.int64)
            * segment.sampling_interval
        )
        blocks += 1
        yield SegmentBlock(segment, first, last, series, timestamps, values)
    registry = get_registry()
    registry.counter("query.columnar_blocks_total").inc(blocks)
    registry.histogram("query.block_decode_seconds").record(decode_seconds)


# ----------------------------------------------------------------------
# Vectorized WHERE filtering
# ----------------------------------------------------------------------
def compare(array: np.ndarray, operator: str, literal) -> np.ndarray:
    """Vectorized comparison of one array against one literal."""
    if operator == "=":
        return array == literal
    if operator == "<":
        return array < literal
    if operator == "<=":
        return array <= literal
    if operator == ">":
        return array > literal
    if operator == ">=":
        return array >= literal
    raise QueryError(f"unsupported operator {operator!r}")


def point_mask(
    timestamps: np.ndarray,
    values: np.ndarray,
    conditions: list[Condition],
) -> np.ndarray | None:
    """AND-combined boolean mask for TS/Value conditions; None when
    unconditioned (callers skip the indexing entirely)."""
    mask = None
    for condition in conditions:
        name = condition.column.lower()
        if name in ("ts", "timestamp"):
            target = timestamps
            literal = parse_timestamp(condition.value)
        else:
            target = values
            literal = float(condition.value)
        current = compare(target, condition.operator, literal)
        mask = current if mask is None else (mask & current)
    return mask
