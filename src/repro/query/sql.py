"""A small SQL dialect covering the paper's query classes (Section 7.2).

Supported statements::

    SELECT SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid
    SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid = 1 GROUP BY Tid
    SELECT Category, CUBE_AVG_MONTH(*) FROM Segment
        WHERE Category = 'Production' GROUP BY Category
    SELECT TS, Value FROM DataPoint WHERE Tid = 2 AND TS >= 1000 AND TS <= 2000
    SELECT COUNT(*) FROM DataPoint WHERE Tid = 1
    SELECT FORECAST(TS, 10) FROM DataPoint WHERE Tid = 1
    SELECT * FROM Segment SIMILAR TO (1.0, 2.0, 3.0) LIMIT 5
    SELECT Tid, StartTime, Anomaly FROM Segment WHERE Anomaly = 1

Conditions are AND-combined equality/range predicates over ``Tid``,
``TS`` and denormalised dimension columns, plus ``Tid IN (...)``. This is
deliberately the subset the evaluation workloads exercise — S-AGG, L-AGG,
M-AGG and P/R all parse with it — plus the model-native analytics
surface of :mod:`repro.query.analytics`.

:data:`GRAMMAR` is the authoritative EBNF of everything this parser
accepts; ``docs/QUERYING.md`` is asserted equal to it by
``scripts/check_docs.py``, so the SQL reference cannot drift.
"""

from __future__ import annotations

import datetime as dt
import re
from dataclasses import dataclass, replace

from ..core.errors import QueryError


def parse_timestamp(value: object) -> int:
    """A TS literal: epoch milliseconds, or an ISO-ish UTC date string."""
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        for pattern in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
            try:
                moment = dt.datetime.strptime(value, pattern)
            except ValueError:
                continue
            moment = moment.replace(tzinfo=dt.timezone.utc)
            return int(moment.timestamp() * 1000)
    raise QueryError(f"cannot interpret {value!r} as a timestamp")

_TOKEN = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            # single-quoted string
      | "(?:[^"]*)"            # double-quoted string
      | [A-Za-z_][\w.]*        # identifier (dots allow Dimension.Level)
      | -?\d+\.\d+             # float
      | -?\d+                  # int
      | <=|>=|<>|!=|[(),*=<>]  # symbols
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Star:
    """The ``*`` select item."""


@dataclass(frozen=True)
class Column:
    name: str


@dataclass(frozen=True)
class Call:
    function: str
    argument: str  # "*" or a column name


@dataclass(frozen=True)
class Forecast:
    """The ``FORECAST(TS, horizon)`` select item.

    Extrapolates every selected series ``horizon`` steps past its last
    stored point, from model parameters alone (see
    :mod:`repro.query.analytics`).
    """

    horizon: int


SelectItem = Star | Column | Call | Forecast


@dataclass(frozen=True)
class Condition:
    column: str
    operator: str  # '=', '<', '<=', '>', '>=', 'IN'
    value: object  # literal, or tuple of literals for IN


@dataclass(frozen=True)
class Query:
    view: str  # 'segment' or 'datapoint'
    select: tuple[SelectItem, ...]
    where: tuple[Condition, ...] = ()
    group_by: tuple[str, ...] = ()
    #: The ``SIMILAR TO (...)`` search pattern, or None.
    similar_to: tuple[float, ...] | None = None
    #: The ``LIMIT`` row bound (similarity's k), or None.
    limit: int | None = None
    #: The ``AS OF <knowledge-time>`` bound: read the store as it was
    #: known at that knowledge tick. None reads the latest-known state.
    as_of: int | None = None

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, Call) for item in self.select)

    @property
    def has_forecast(self) -> bool:
        return any(isinstance(item, Forecast) for item in self.select)


def tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise QueryError(
                    f"cannot tokenize query near {text[position:position+20]!r}"
                )
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.upper() != keyword:
            raise QueryError(f"expected {keyword}, got {token!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.upper() == keyword

    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self.expect_keyword("SELECT")
        select = self._parse_select_list()
        self.expect_keyword("FROM")
        view = self.next().lower()
        if view not in ("segment", "datapoint"):
            raise QueryError(
                f"unknown view {view!r}; expected Segment or DataPoint"
            )
        where: tuple[Condition, ...] = ()
        group_by: tuple[str, ...] = ()
        similar_to: tuple[float, ...] | None = None
        limit: int | None = None
        as_of: int | None = None
        if self.at_keyword("AS"):
            self.next()
            self.expect_keyword("OF")
            as_of = self._parse_as_of()
        if self.at_keyword("WHERE"):
            self.next()
            where = self._parse_conditions()
        if self.at_keyword("GROUP"):
            self.next()
            self.expect_keyword("BY")
            group_by = self._parse_identifier_list()
        if self.at_keyword("SIMILAR"):
            self.next()
            self.expect_keyword("TO")
            similar_to = self._parse_pattern()
        if self.at_keyword("LIMIT"):
            self.next()
            limit = self._parse_limit()
        if self.peek() is not None:
            raise QueryError(f"unexpected trailing token {self.peek()!r}")
        return Query(view, select, where, group_by, similar_to, limit, as_of)

    def _parse_select_list(self) -> tuple[SelectItem, ...]:
        items: list[SelectItem] = [self._parse_select_item()]
        while self.peek() == ",":
            self.next()
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self.next()
        if token == "*":
            return Star()
        if not _is_identifier(token):
            raise QueryError(f"invalid select item {token!r}")
        if token.upper() == "FORECAST" and self.peek() == "(":
            return self._parse_forecast()
        if self.peek() == "(":
            self.next()
            argument = self.next()
            if argument != "*" and not _is_identifier(argument):
                raise QueryError(f"invalid aggregate argument {argument!r}")
            if self.next() != ")":
                raise QueryError("expected ')' after aggregate argument")
            return Call(token.upper(), argument)
        return Column(token)

    def _parse_forecast(self) -> Forecast:
        self.next()  # '('
        column = self.next()
        if column.upper() != "TS":
            raise QueryError(
                f"FORECAST extrapolates the TS axis; got {column!r}"
            )
        if self.next() != ",":
            raise QueryError("expected ',' after FORECAST(TS")
        horizon_token = self.next()
        try:
            horizon = int(horizon_token)
        except ValueError:
            raise QueryError(
                f"FORECAST horizon must be an integer, got {horizon_token!r}"
            ) from None
        if horizon < 1:
            raise QueryError("FORECAST horizon must be at least 1")
        if self.next() != ")":
            raise QueryError("expected ')' after the FORECAST horizon")
        return Forecast(horizon)

    def _parse_pattern(self) -> tuple[float, ...]:
        if self.next() != "(":
            raise QueryError("expected '(' after SIMILAR TO")
        values = [self._parse_number()]
        while self.peek() == ",":
            self.next()
            values.append(self._parse_number())
        if self.next() != ")":
            raise QueryError("expected ')' to close the SIMILAR TO pattern")
        return tuple(values)

    def _parse_number(self) -> float:
        token = self.next()
        try:
            return float(token)
        except ValueError:
            raise QueryError(
                f"SIMILAR TO patterns take numbers, got {token!r}"
            ) from None

    def _parse_as_of(self) -> int:
        token = self.next()
        try:
            as_of = int(token)
        except ValueError:
            raise QueryError(
                f"AS OF takes an integer knowledge time, got {token!r}"
            ) from None
        if as_of < 0:
            raise QueryError("AS OF knowledge time must be non-negative")
        return as_of

    def _parse_limit(self) -> int:
        token = self.next()
        try:
            limit = int(token)
        except ValueError:
            raise QueryError(
                f"LIMIT must be an integer, got {token!r}"
            ) from None
        if limit < 1:
            raise QueryError("LIMIT must be at least 1")
        return limit

    def _parse_conditions(self) -> tuple[Condition, ...]:
        conditions = [self._parse_condition()]
        while self.at_keyword("AND"):
            self.next()
            conditions.append(self._parse_condition())
        return tuple(conditions)

    def _parse_condition(self) -> Condition:
        column = self.next()
        if not _is_identifier(column):
            raise QueryError(f"invalid column name {column!r}")
        operator = self.next()
        if operator.upper() == "IN":
            if self.next() != "(":
                raise QueryError("expected '(' after IN")
            values = [self._parse_literal()]
            while self.peek() == ",":
                self.next()
                values.append(self._parse_literal())
            if self.next() != ")":
                raise QueryError("expected ')' to close IN list")
            return Condition(column, "IN", tuple(values))
        if operator not in ("=", "<", "<=", ">", ">="):
            raise QueryError(f"unsupported operator {operator!r}")
        return Condition(column, operator, self._parse_literal())

    def _parse_identifier_list(self) -> tuple[str, ...]:
        names = [self.next()]
        while self.peek() == ",":
            self.next()
            names.append(self.next())
        for name in names:
            if not _is_identifier(name):
                raise QueryError(f"invalid GROUP BY column {name!r}")
        return tuple(names)

    def _parse_literal(self) -> str | int | float:
        token = self.next()
        if token.startswith(("'", '"')):
            return token[1:-1]
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            raise QueryError(f"invalid literal {token!r}") from None


def _is_identifier(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][\w.]*", token))


#: The authoritative grammar of this dialect, one production per line.
#: ``docs/QUERYING.md`` must quote it verbatim (``check_querying()`` in
#: ``scripts/check_docs.py`` asserts equality), so changing the parser
#: without updating the SQL reference fails CI.
GRAMMAR = (
    "statement   = [ 'EXPLAIN' 'ANALYZE' ] select",
    "select      = 'SELECT' select_list 'FROM' view"
    " [ 'AS' 'OF' integer ] [ 'WHERE' conditions ]",
    "              [ 'GROUP' 'BY' identifier { ',' identifier } ]",
    "              [ 'SIMILAR' 'TO' pattern ] [ 'LIMIT' integer ]",
    "view        = 'Segment' | 'DataPoint'",
    "select_list = select_item { ',' select_item }",
    "select_item = '*' | identifier | aggregate | forecast",
    "aggregate   = function '(' ( '*' | identifier ) ')'",
    "forecast    = 'FORECAST' '(' 'TS' ',' integer ')'",
    "conditions  = condition { 'AND' condition }",
    "condition   = identifier operator literal",
    "            | identifier 'IN' '(' literal { ',' literal } ')'",
    "operator    = '=' | '<' | '<=' | '>' | '>='",
    "pattern     = '(' number { ',' number } ')'",
    "literal     = number | integer | string | timestamp",
)


def parse(text: str) -> Query:
    """Parse one SQL statement into a :class:`Query`."""
    return _Parser(tokenize(text)).parse()


def apply_as_of(query: Query, as_of: int | None) -> Query:
    """Combine a parsed query with an ``as_of`` keyword argument.

    The statement's own ``AS OF`` clause and the API-level ``as_of``
    parameter must agree when both are given — silently preferring one
    would make the same statement mean different things at different
    call sites.
    """
    if as_of is None:
        return query
    if as_of < 0:
        raise QueryError("AS OF knowledge time must be non-negative")
    if query.as_of is not None and query.as_of != as_of:
        raise QueryError(
            f"conflicting AS OF bounds: statement says {query.as_of}, "
            f"as_of argument says {as_of}"
        )
    return replace(query, as_of=as_of)
