"""A small SQL dialect covering the paper's query classes (Section 7.2).

Supported statements::

    SELECT SUM_S(*) FROM Segment WHERE Tid IN (1, 2, 3) GROUP BY Tid
    SELECT Tid, CUBE_SUM_HOUR(*) FROM Segment WHERE Tid = 1 GROUP BY Tid
    SELECT Category, CUBE_AVG_MONTH(*) FROM Segment
        WHERE Category = 'Production' GROUP BY Category
    SELECT TS, Value FROM DataPoint WHERE Tid = 2 AND TS >= 1000 AND TS <= 2000
    SELECT COUNT(*) FROM DataPoint WHERE Tid = 1

Conditions are AND-combined equality/range predicates over ``Tid``,
``TS`` and denormalised dimension columns, plus ``Tid IN (...)``. This is
deliberately the subset the evaluation workloads exercise — S-AGG, L-AGG,
M-AGG and P/R all parse with it.
"""

from __future__ import annotations

import datetime as dt
import re
from dataclasses import dataclass

from ..core.errors import QueryError


def parse_timestamp(value: object) -> int:
    """A TS literal: epoch milliseconds, or an ISO-ish UTC date string."""
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        for pattern in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d"):
            try:
                moment = dt.datetime.strptime(value, pattern)
            except ValueError:
                continue
            moment = moment.replace(tzinfo=dt.timezone.utc)
            return int(moment.timestamp() * 1000)
    raise QueryError(f"cannot interpret {value!r} as a timestamp")

_TOKEN = re.compile(
    r"""
    \s*(
        '(?:[^']*)'            # single-quoted string
      | "(?:[^"]*)"            # double-quoted string
      | [A-Za-z_][\w.]*        # identifier (dots allow Dimension.Level)
      | -?\d+\.\d+             # float
      | -?\d+                  # int
      | <=|>=|<>|!=|[(),*=<>]  # symbols
    )
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Star:
    """The ``*`` select item."""


@dataclass(frozen=True)
class Column:
    name: str


@dataclass(frozen=True)
class Call:
    function: str
    argument: str  # "*" or a column name


SelectItem = Star | Column | Call


@dataclass(frozen=True)
class Condition:
    column: str
    operator: str  # '=', '<', '<=', '>', '>=', 'IN'
    value: object  # literal, or tuple of literals for IN


@dataclass(frozen=True)
class Query:
    view: str  # 'segment' or 'datapoint'
    select: tuple[SelectItem, ...]
    where: tuple[Condition, ...] = ()
    group_by: tuple[str, ...] = ()

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, Call) for item in self.select)


def tokenize(text: str) -> list[str]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            if text[position:].strip():
                raise QueryError(
                    f"cannot tokenize query near {text[position:position+20]!r}"
                )
            break
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self._index += 1
        return token

    def expect_keyword(self, keyword: str) -> None:
        token = self.next()
        if token.upper() != keyword:
            raise QueryError(f"expected {keyword}, got {token!r}")

    def at_keyword(self, keyword: str) -> bool:
        token = self.peek()
        return token is not None and token.upper() == keyword

    # ------------------------------------------------------------------
    def parse(self) -> Query:
        self.expect_keyword("SELECT")
        select = self._parse_select_list()
        self.expect_keyword("FROM")
        view = self.next().lower()
        if view not in ("segment", "datapoint"):
            raise QueryError(
                f"unknown view {view!r}; expected Segment or DataPoint"
            )
        where: tuple[Condition, ...] = ()
        group_by: tuple[str, ...] = ()
        if self.at_keyword("WHERE"):
            self.next()
            where = self._parse_conditions()
        if self.at_keyword("GROUP"):
            self.next()
            self.expect_keyword("BY")
            group_by = self._parse_identifier_list()
        if self.peek() is not None:
            raise QueryError(f"unexpected trailing token {self.peek()!r}")
        return Query(view, select, where, group_by)

    def _parse_select_list(self) -> tuple[SelectItem, ...]:
        items: list[SelectItem] = [self._parse_select_item()]
        while self.peek() == ",":
            self.next()
            items.append(self._parse_select_item())
        return tuple(items)

    def _parse_select_item(self) -> SelectItem:
        token = self.next()
        if token == "*":
            return Star()
        if not _is_identifier(token):
            raise QueryError(f"invalid select item {token!r}")
        if self.peek() == "(":
            self.next()
            argument = self.next()
            if argument != "*" and not _is_identifier(argument):
                raise QueryError(f"invalid aggregate argument {argument!r}")
            if self.next() != ")":
                raise QueryError("expected ')' after aggregate argument")
            return Call(token.upper(), argument)
        return Column(token)

    def _parse_conditions(self) -> tuple[Condition, ...]:
        conditions = [self._parse_condition()]
        while self.at_keyword("AND"):
            self.next()
            conditions.append(self._parse_condition())
        return tuple(conditions)

    def _parse_condition(self) -> Condition:
        column = self.next()
        if not _is_identifier(column):
            raise QueryError(f"invalid column name {column!r}")
        operator = self.next()
        if operator.upper() == "IN":
            if self.next() != "(":
                raise QueryError("expected '(' after IN")
            values = [self._parse_literal()]
            while self.peek() == ",":
                self.next()
                values.append(self._parse_literal())
            if self.next() != ")":
                raise QueryError("expected ')' to close IN list")
            return Condition(column, "IN", tuple(values))
        if operator not in ("=", "<", "<=", ">", ">="):
            raise QueryError(f"unsupported operator {operator!r}")
        return Condition(column, operator, self._parse_literal())

    def _parse_identifier_list(self) -> tuple[str, ...]:
        names = [self.next()]
        while self.peek() == ",":
            self.next()
            names.append(self.next())
        for name in names:
            if not _is_identifier(name):
                raise QueryError(f"invalid GROUP BY column {name!r}")
        return tuple(names)

    def _parse_literal(self):
        token = self.next()
        if token.startswith(("'", '"')):
            return token[1:-1]
        try:
            return int(token)
        except ValueError:
            pass
        try:
            return float(token)
        except ValueError:
            raise QueryError(f"invalid literal {token!r}") from None


def _is_identifier(token: str) -> bool:
    return bool(re.fullmatch(r"[A-Za-z_][\w.]*", token))


def parse(text: str) -> Query:
    """Parse one SQL statement into a :class:`Query`."""
    return _Parser(tokenize(text)).parse()
