"""Model-native analytics: FORECAST, SIMILAR TO, and anomaly flags.

ModelarDB+ stores segments as mathematical models — PMC-Mean level
holds and Swing linear trends — which makes three analytic workloads
answerable from model *parameters* instead of reconstructed points
(tspDB's thesis that prediction belongs in the database, applied to a
model-based store):

``FORECAST(TS, horizon)``
    Extrapolates every selected series ``horizon`` steps past its last
    stored segment: a Swing segment continues its fitted slope, a
    PMC-Mean segment holds its level, a lossless segment holds its last
    value. The per-model error bound propagates into the result as a
    ``[Lo, Hi]`` interval per forecast point: the bound guarantees each
    stored endpoint is within ``error_bound`` percent of the true
    value, so the interval starts at that tolerance and, for trend
    models, widens linearly with the horizon by the slope uncertainty
    the two endpoint tolerances admit.

``SIMILAR TO (v1, v2, ...)``
    Whole-matching sub-sequence search under Euclidean distance over a
    *parameter-space index*: one Segment View pass builds a
    :class:`SignatureIndex` of per-segment level envelopes
    (``slice_min``/``slice_max`` are O(1) for constant/linear models),
    a vectorised per-window lower bound prunes from the envelopes
    alone, and only windows whose bound beats the current k-th best
    distance are verified against reconstructed values.

``Anomaly``
    A per-segment flag from residual-vs-error-bound drift at segment
    boundaries: the fitter starts a new segment exactly when the next
    point leaves the current model's feasible region, so a boundary
    where the next segment's first value sits far outside what the
    previous model extrapolates — beyond the error-bound tolerance and
    the model's own per-step movement — marks a structural break
    rather than in-bound noise.

Every entry point works from the Segment View: forecasts and envelopes
never materialise stored points, and similarity reconstructs only the
candidate windows that survive pruning. Both engine execution modes
(row and columnar) share this code path, so results are bit-identical
by construction, preserving the PR 6 contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..core.errors import QueryError
from .rewriter import RewrittenQuery
from .sql import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .views import SegmentViewRow

__all__ = [
    "DEFAULT_SIMILARITY_K",
    "Match",
    "SearchStats",
    "SignatureIndex",
    "forecast_block",
    "forecast_halfwidths",
    "window_lower_bounds",
    "forecast_rows",
    "similarity_rows",
    "anomaly_starts",
    "merge_analytics_rows",
]

#: ``SIMILAR TO`` result count when the statement has no ``LIMIT``.
DEFAULT_SIMILARITY_K = 10

#: Boundary drift beyond this multiple of the error-bound tolerance
#: (and of the previous model's own per-step movement) flags an anomaly.
ANOMALY_SCALE = 3.0

#: Result schemas (fixed, documented in docs/QUERYING.md).
FORECAST_COLUMNS = ("Tid", "TS", "Value", "Lo", "Hi")
SIMILARITY_COLUMNS = ("Tid", "StartTime", "Distance")


@dataclass(frozen=True)
class Match:
    """One similarity-search result."""

    tid: int
    start_time: int
    distance: float


@dataclass
class SearchStats:
    """Pruning effectiveness counters (metrics, tests and curiosity)."""

    windows: int = 0
    verified: int = 0

    @property
    def pruned_fraction(self) -> float:
        if self.windows == 0:
            return 0.0
        return 1.0 - self.verified / self.windows


# ----------------------------------------------------------------------
# Vectorised kernels (RPR006-checked: no per-tick scalar loops)
# ----------------------------------------------------------------------
def forecast_block(
    last_values: np.ndarray, steps: np.ndarray, horizon: int
) -> np.ndarray:
    """(series × horizon) forecast matrix from per-series parameters.

    Row ``i`` is ``last_values[i] + steps[i] * (1..horizon)`` — the
    model's own extrapolation rule (slope continuation for Swing, zero
    step for level holds), evaluated for all series and all horizon
    offsets in one broadcast.
    """
    offsets = np.arange(1, horizon + 1, dtype=np.float64)
    return last_values[:, None] + steps[:, None] * offsets[None, :]


def forecast_halfwidths(
    end_tolerances: np.ndarray, growths: np.ndarray, horizon: int
) -> np.ndarray:
    """(series × horizon) error half-widths for :func:`forecast_block`.

    The half-width at offset ``h`` is the endpoint tolerance plus
    ``h`` times the per-step growth the model's fitted parameters
    admit (zero for level holds and lossless models).
    """
    offsets = np.arange(1, horizon + 1, dtype=np.float64)
    return end_tolerances[:, None] + growths[:, None] * offsets[None, :]


def window_lower_bounds(
    pattern: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Per-window lower bound on the distance, from the envelope alone.

    A pattern value contributes at least its squared distance to the
    ``[lower, upper]`` interval it aligns with; a window crossing a gap
    (NaN envelope) is invalid and bounds to infinity. Vectorised over
    all windows at once, offset by offset (pattern lengths are small
    compared to series lengths).
    """
    length = len(pattern)
    n_windows = len(lower) - length + 1
    if n_windows < 1:
        return np.empty(0)
    bounds = np.zeros(n_windows)
    for offset, value in enumerate(pattern):
        below = np.maximum(lower[offset:offset + n_windows] - value, 0.0)
        above = np.maximum(value - upper[offset:offset + n_windows], 0.0)
        bounds += np.maximum(below, above) ** 2
    invalid = np.isnan(lower) | np.isnan(upper)
    if invalid.any():
        bad = np.convolve(
            invalid.astype(np.int64), np.ones(length, dtype=np.int64)
        )
        bounds[bad[length - 1:length - 1 + n_windows] > 0] = np.inf
    return bounds


# ----------------------------------------------------------------------
# The parameter-space index
# ----------------------------------------------------------------------
class SignatureIndex:
    """Per-series segment signatures from one Segment View pass.

    Generalises the per-Tid envelope scan of the original
    ``query/similarity.py`` seed: every restricted segment row is
    visited exactly once, grouped by Tid, and summarised by its model
    parameters (start, length, level envelope via ``slice_min``/
    ``slice_max`` — O(1) for constant and linear models). Envelopes
    power window pruning; reconstruction happens lazily and only for
    series with surviving candidate windows.
    """

    def __init__(self, rows: Iterable["SegmentViewRow"]) -> None:
        self._series: dict[int, list] = {}
        for view_row in rows:
            self._series.setdefault(view_row.row.tid, []).append(view_row)
        for segment_rows in self._series.values():
            segment_rows.sort(key=lambda view_row: view_row.row.start_time)

    @property
    def tids(self) -> list[int]:
        return sorted(self._series)

    def segments(self, tid: int) -> list:
        """The series' segment rows, sorted by start time."""
        return self._series.get(tid, [])

    def envelope(
        self, tid: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """(timestamps, lower, upper) per grid point; NaN marks gaps."""
        rows = self._series.get(tid)
        if not rows:
            return None
        si = rows[0].row.sampling_interval
        start = rows[0].row.start_time
        end = max(view_row.row.end_time for view_row in rows)
        n_points = (end - start) // si + 1
        timestamps = start + np.arange(n_points, dtype=np.int64) * si
        lower = np.full(n_points, np.nan)
        upper = np.full(n_points, np.nan)
        for view_row in rows:
            row = view_row.row
            first_index = (row.start_time - start) // si
            last_index = (row.end_time - start) // si
            low = view_row.model.slice_min(0, row.length - 1, row.column)
            high = view_row.model.slice_max(0, row.length - 1, row.column)
            lower[first_index:last_index + 1] = low / row.scaling
            upper[first_index:last_index + 1] = high / row.scaling
        return timestamps, lower, upper

    def reconstruct(self, tid: int, n_points: int) -> np.ndarray:
        """Full series reconstruction (verified candidates only)."""
        rows = self._series[tid]
        si = rows[0].row.sampling_interval
        start = rows[0].row.start_time
        values = np.full(n_points, np.nan)
        for view_row in rows:
            row = view_row.row
            first_index = (row.start_time - start) // si
            column = view_row.model.column_values(row.column) / row.scaling
            values[first_index:first_index + row.length] = column
        return values


# ----------------------------------------------------------------------
# FORECAST
# ----------------------------------------------------------------------
def forecast_rows(
    index: SignatureIndex, horizon: int, error_bound: float
) -> list[dict]:
    """``FORECAST(TS, horizon)`` result rows, sorted by (Tid, TS).

    Each series is extrapolated from its *last* stored segment's model
    parameters; no stored point is reconstructed. ``error_bound`` is
    the ingestion-time relative bound in percent; it propagates into
    per-point ``[Lo, Hi]`` intervals via :func:`forecast_halfwidths`.
    """
    tids: list[int] = []
    ends: list[int] = []
    intervals: list[int] = []
    last_values: list[float] = []
    steps: list[float] = []
    tolerances: list[float] = []
    growths: list[float] = []
    for tid in index.tids:
        view_row = index.segments(tid)[-1]
        row = view_row.row
        model = view_row.model
        # The clipped index range makes `WHERE TS <= t` mean "forecast
        # as of t": extrapolation starts at the last in-interval point.
        last_index = view_row.last
        last = model.value_at(last_index, row.column) / row.scaling
        if model.constant_time_aggregates and last_index >= 1:
            step = (
                last
                - model.value_at(last_index - 1, row.column) / row.scaling
            )
        else:
            # Lossless models carry no trend parameter; single-point
            # spans constrain no slope. Both hold the last value.
            step = 0.0
        first = model.value_at(0, row.column) / row.scaling
        end_tolerance = _tolerance(last, error_bound)
        if step != 0.0 and last_index >= 1:
            # A fitted slope can differ from the true one by at most
            # the two endpoint tolerances spread over the fitted span.
            growth = (
                _tolerance(first, error_bound) + end_tolerance
            ) / last_index
        else:
            growth = 0.0
        tids.append(tid)
        ends.append(row.start_time + last_index * row.sampling_interval)
        intervals.append(row.sampling_interval)
        last_values.append(last)
        steps.append(step)
        tolerances.append(end_tolerance)
        growths.append(growth)
    if not tids:
        return []
    values = forecast_block(
        np.array(last_values), np.array(steps), horizon
    )
    halfwidths = forecast_halfwidths(
        np.array(tolerances), np.array(growths), horizon
    )
    lows = (values - halfwidths).tolist()
    highs = (values + halfwidths).tolist()
    value_lists = values.tolist()
    results: list[dict] = []
    for position, tid in enumerate(tids):
        si = intervals[position]
        end = ends[position]
        for offset in range(horizon):
            results.append(
                {
                    "Tid": tid,
                    "TS": end + (offset + 1) * si,
                    "Value": value_lists[position][offset],
                    "Lo": lows[position][offset],
                    "Hi": highs[position][offset],
                }
            )
    return results


def _tolerance(value: float, error_bound: float) -> float:
    """Absolute tolerance of one stored value under a relative bound.

    The bound guarantees ``|stored - true| <= bound% * |true|``; solved
    for the unknown true value this is ``bound% * |stored| / (1 -
    bound%)`` — the widest absolute deviation any admissible true value
    can have from the stored one.
    """
    if error_bound <= 0.0:
        return 0.0
    fraction = min(error_bound, 99.0) / 100.0
    return fraction * abs(value) / (1.0 - fraction)


# ----------------------------------------------------------------------
# SIMILAR TO
# ----------------------------------------------------------------------
def similarity_rows(
    index: SignatureIndex,
    pattern: Sequence[float],
    k: int,
    stats: SearchStats | None = None,
) -> list[dict]:
    """``SIMILAR TO`` result rows: the k closest windows, globally.

    Sorted by (Distance, Tid, StartTime) — a total order, so the
    master-side scatter-gather merge (:func:`merge_analytics_rows`)
    reproduces the single-node result exactly.
    """
    matches = search(index, pattern, k, stats)
    return [
        {
            "Tid": match.tid,
            "StartTime": match.start_time,
            "Distance": match.distance,
        }
        for match in matches
    ]


def search(
    index: SignatureIndex,
    pattern: Sequence[float],
    k: int,
    stats: SearchStats | None = None,
) -> list[Match]:
    """Top-k sub-sequence search over the signature index."""
    query = np.asarray(pattern, dtype=np.float64)
    if query.ndim != 1 or len(query) < 1:
        raise QueryError("the search pattern must be a non-empty sequence")
    if k < 1:
        raise QueryError("k must be at least 1")
    counters = stats if stats is not None else SearchStats()
    best: list[Match] = []
    for tid in index.tids:
        _search_series(index, tid, query, k, best, counters)
    best.sort(key=_match_order)
    return best[:k]


def _match_order(match: Match) -> tuple[float, int, int]:
    return (match.distance, match.tid, match.start_time)


def _search_series(
    index: SignatureIndex,
    tid: int,
    query: np.ndarray,
    k: int,
    best: list[Match],
    stats: SearchStats,
) -> None:
    envelope = index.envelope(tid)
    if envelope is None:
        return
    timestamps, lower, upper = envelope
    length = len(query)
    bounds = window_lower_bounds(query, lower, upper)
    if len(bounds) == 0:
        return
    stats.windows += len(bounds)
    order = np.argsort(bounds)
    values_cache: np.ndarray | None = None
    for position in order:
        bound = bounds[position]
        threshold = best[k - 1].distance ** 2 if len(best) >= k else np.inf
        # The bound accumulates offset by offset while the verified
        # distance uses numpy's pairwise sum, so on a tight envelope the
        # bound can land a few ulps above the true squared distance. The
        # relative slack (far above any accumulation error for realistic
        # pattern lengths) keeps tied windows verifiable; verification
        # computes exact distances, so results stay exact.
        if bound > threshold * (1.0 + 1e-9):
            break  # sorted by bound: nothing later can qualify
        if not np.isfinite(bound):
            break
        if values_cache is None:
            values_cache = index.reconstruct(tid, len(timestamps))
        stats.verified += 1
        window = values_cache[position:position + length]
        if np.isnan(window).any():
            continue
        distance = float(np.sqrt(((window - query) ** 2).sum()))
        candidate = Match(tid, int(timestamps[position]), distance)
        # Compare under the full (Distance, Tid, StartTime) order, not
        # distance alone: flat regions produce runs of equal-distance
        # windows and the total order decides which of them are top-k.
        if len(best) < k or _match_order(candidate) < _match_order(
            best[k - 1]
        ):
            best.append(candidate)
            best.sort(key=_match_order)
            del best[k:]


# ----------------------------------------------------------------------
# Anomaly flags
# ----------------------------------------------------------------------
def anomaly_starts(
    index: SignatureIndex, error_bound: float
) -> set[tuple[int, int]]:
    """(tid, segment start time) of every anomalous segment boundary.

    The fitter closes a segment exactly when the next point leaves the
    model's feasible region, so every boundary is *some* change; the
    flag separates structural breaks from in-bound noise. A boundary is
    anomalous when the next segment's first value drifts from the
    previous model's one-step extrapolation by more than
    :data:`ANOMALY_SCALE` times the larger of the error-bound
    tolerances and the previous model's own per-step movement. Gaps
    (non-contiguous segments) are not scored — absence is not drift.
    """
    flagged: set[tuple[int, int]] = set()
    for tid in index.tids:
        rows = index.segments(tid)
        for previous, current in zip(rows, rows[1:]):
            prev_row = previous.row
            cur_row = current.row
            si = prev_row.sampling_interval
            if cur_row.start_time - prev_row.end_time != si:
                continue
            length = prev_row.length
            prev_model = previous.model
            last = (
                prev_model.value_at(length - 1, prev_row.column)
                / prev_row.scaling
            )
            if prev_model.constant_time_aggregates and length > 1:
                step = (
                    last
                    - prev_model.value_at(length - 2, prev_row.column)
                    / prev_row.scaling
                )
            else:
                step = 0.0
            expected = last + step
            first = (
                current.model.value_at(0, cur_row.column) / cur_row.scaling
            )
            drift = abs(first - expected)
            tolerance = ANOMALY_SCALE * max(
                _tolerance(last, error_bound),
                _tolerance(first, error_bound),
                abs(step),
            )
            if drift > max(tolerance, 1e-12):
                flagged.add((cur_row.tid, cur_row.start_time))
    return flagged


# ----------------------------------------------------------------------
# Scatter-gather merge (master side)
# ----------------------------------------------------------------------
def merge_analytics_rows(query: Query, rows: list[dict]) -> list[dict]:
    """Merge per-shard analytics rows into the single-node result.

    Similarity keeps the global top-k by the same total order every
    worker sorts with; forecasts re-sort by (Tid, TS) because shards
    return disjoint Tids in shard — not Tid — order. Anything else
    passes through unchanged.
    """
    if query.similar_to is not None:
        k = query.limit if query.limit is not None else DEFAULT_SIMILARITY_K
        return sorted(
            rows,
            key=lambda row: (row["Distance"], row["Tid"], row["StartTime"]),
        )[:k]
    if query.has_forecast:
        return sorted(rows, key=lambda row: (row["Tid"], row["TS"]))
    return rows


# ----------------------------------------------------------------------
# Plan helper shared by the engine entry points
# ----------------------------------------------------------------------
def build_index(engine, plan: RewrittenQuery) -> SignatureIndex:
    """One restricted Segment View pass into a :class:`SignatureIndex`."""
    return SignatureIndex(engine._segment_view().rows(plan))
