"""The Segment View and Data Point View (Section 6.1).

The Segment View exposes stored segments one row per (segment, Tid) with
schema (Tid, StartTime, EndTime, SI, Mid, Parameters, Gaps, Dimensions);
aggregates executed on it use the models directly. The Data Point View
reconstructs data points with schema (Tid, TS, Value, Dimensions) and is
the fallback for anything that needs actual points.

Both views attach denormalised dimension members from the metadata cache
and clip rows to the query's time interval, yielding the inclusive model
index range the aggregate framework consumes.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import numpy as np

from ..core.segment import SegmentRow, explode
from ..models.base import FittedModel
from ..storage.interface import Storage
from .cache import SegmentCache
from .metadata import MetadataCache
from .rewriter import RewrittenQuery


class SegmentViewRow(NamedTuple):
    """One Segment View row plus its decoded model and clipped range."""

    row: SegmentRow
    model: FittedModel
    first: int  # first model index inside the query interval (inclusive)
    last: int  # last model index inside the query interval (inclusive)


class DataPointRow(NamedTuple):
    """One Data Point View row."""

    tid: int
    timestamp: int
    value: float
    dimensions: dict[str, str]


class SegmentView:
    """Model-level access to stored segments."""

    def __init__(
        self,
        storage: Storage,
        cache: SegmentCache,
        metadata: MetadataCache,
    ) -> None:
        self._storage = storage
        self._cache = cache
        self._metadata = metadata

    def rows(self, plan: RewrittenQuery) -> Iterator[SegmentViewRow]:
        """Exploded, clipped view rows for a rewritten query."""
        scalings = self._metadata.scalings()
        dimension_rows = self._metadata.dimension_rows()
        tids = set(plan.tids)
        for segment in self._storage.scan(plan.scan_request()):
            clipped = _clip(segment, plan.start_time, plan.end_time)
            if clipped is None:
                continue
            first, last = clipped
            model = None
            for row in explode(segment, scalings, dimension_rows, tids):
                if model is None:
                    model = self._cache.decode(
                        segment.mid,
                        segment.parameters,
                        segment.n_columns,
                        segment.length,
                    )
                yield SegmentViewRow(row, model, first, last)


class DataPointView:
    """Point-level access: reconstructs data points from segments."""

    def __init__(
        self,
        storage: Storage,
        cache: SegmentCache,
        metadata: MetadataCache,
    ) -> None:
        self._segment_view = SegmentView(storage, cache, metadata)

    def rows(self, plan: RewrittenQuery) -> Iterator[DataPointRow]:
        """Reconstructed data points, ordered per segment."""
        for view_row in self._segment_view.rows(plan):
            row = view_row.row
            values = view_row.model.column_values(row.column) / row.scaling
            base = row.start_time
            si = row.sampling_interval
            for index in range(view_row.first, view_row.last + 1):
                yield DataPointRow(
                    row.tid,
                    base + index * si,
                    float(values[index]),
                    row.dimensions,
                )

    def arrays(
        self, plan: RewrittenQuery
    ) -> Iterator[tuple[SegmentRow, np.ndarray, np.ndarray]]:
        """Vectorised access: (row, timestamps, values) per segment row.

        Used by aggregate execution on the Data Point View so the
        point-level path is a fair (numpy-speed) baseline rather than a
        strawman.
        """
        for view_row in self._segment_view.rows(plan):
            row = view_row.row
            values = view_row.model.column_values(row.column) / row.scaling
            first, last = view_row.first, view_row.last
            timestamps = row.start_time + np.arange(first, last + 1) * (
                row.sampling_interval
            )
            yield row, timestamps, values[first:last + 1]


def _clip(
    segment, start_time: int | None, end_time: int | None
) -> tuple[int, int] | None:
    """Inclusive model index range of the segment within [start, end]."""
    first = 0
    last = segment.length - 1
    si = segment.sampling_interval
    if start_time is not None and start_time > segment.start_time:
        offset = start_time - segment.start_time
        first = -(-offset // si)  # ceiling division
    if end_time is not None and end_time < segment.end_time:
        last = (end_time - segment.start_time) // si
    if first > last:
        return None
    return first, last
