"""Main-memory segment cache (Fig. 4).

Caches decoded models so repeated queries over the same segments skip
parameter decoding — which matters most for Gorilla, whose decode walks
the bit stream. A small LRU keyed by the segment's identity.

The cache is shared by every thread serving queries from one engine
(see :mod:`repro.server`), so lookups are lock-protected, and it is
*invalidatable*: ingestion flushes call :meth:`invalidate`, which drops
all entries and bumps a generation counter, so embedded mode can never
serve a decoded model that outlived its segment set.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..models.base import FittedModel
from ..models.registry import ModelRegistry
from ..obs import get_registry

_DEFAULT_CAPACITY = 4096


class SegmentCache:
    """Thread-safe LRU cache from segment identity to decoded model."""

    def __init__(
        self, registry: ModelRegistry, capacity: int = _DEFAULT_CAPACITY
    ) -> None:
        self._registry = registry
        self._capacity = max(capacity, 1)
        self._entries: OrderedDict[tuple, FittedModel] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.generation = 0
        metrics = get_registry()
        self._hits_total = metrics.counter("query.segment_cache_hits_total")
        self._misses_total = metrics.counter(
            "query.segment_cache_misses_total"
        )

    def decode(
        self, mid: int, parameters: bytes, n_columns: int, length: int
    ) -> FittedModel:
        key = (mid, parameters, n_columns, length)
        # The counter instruments carry their own internal lock; bump
        # them only after releasing the cache lock (lock discipline,
        # RPR003).
        with self._lock:
            model = self._entries.get(key)
            if model is not None:
                self._entries.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
        if model is not None:
            self._hits_total.inc()
            return model
        self._misses_total.inc()
        # Decode outside the lock: it can be expensive (Gorilla walks the
        # bit stream) and two threads racing on one key is harmless.
        model = self._registry.decode(mid, parameters, n_columns, length)
        with self._lock:
            self._entries[key] = model
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return model

    def invalidate(self) -> None:
        """Drop all decoded models and start a new generation.

        Called from the ingestion flush hook so queries issued after a
        bulk write re-decode against the stored segments.
        """
        with self._lock:
            self._entries.clear()
            self.generation += 1

    def clear(self) -> None:
        self.invalidate()

    def stats(self) -> dict:
        """Hit/miss counters for the server's ``stats`` op."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "generation": self.generation,
            }
