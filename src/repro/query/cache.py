"""Main-memory segment cache (Fig. 4).

Caches decoded models so repeated queries over the same segments skip
parameter decoding — which matters most for Gorilla, whose decode walks
the bit stream. A small LRU keyed by the segment's identity.
"""

from __future__ import annotations

from collections import OrderedDict

from ..models.base import FittedModel
from ..models.registry import ModelRegistry

_DEFAULT_CAPACITY = 4096


class SegmentCache:
    """LRU cache from segment identity to decoded model."""

    def __init__(
        self, registry: ModelRegistry, capacity: int = _DEFAULT_CAPACITY
    ) -> None:
        self._registry = registry
        self._capacity = max(capacity, 1)
        self._entries: OrderedDict[tuple, FittedModel] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def decode(
        self, mid: int, parameters: bytes, n_columns: int, length: int
    ) -> FittedModel:
        key = (mid, parameters, n_columns, length)
        model = self._entries.get(key)
        if model is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return model
        self.misses += 1
        model = self._registry.decode(mid, parameters, n_columns, length)
        self._entries[key] = model
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return model

    def clear(self) -> None:
        self._entries.clear()
