"""Aggregation in the time dimension (Algorithm 6, Section 6.3).

Because every segment stores its start and end time, aggregates per
calendar interval (``CUBE_SUM_HOUR``, ``CUBE_AVG_MONTH``, ...) are
computed directly on segments — no join with a time dimension table. A
segment is walked boundary by boundary: the first partial interval runs
from the segment start to the next level boundary, whole intervals
follow, and the final interval includes the segment's inclusive end time
(segments are stored disconnected, Fig. 12).

Timestamps are milliseconds since the Unix epoch, interpreted in UTC.
"""

from __future__ import annotations

import calendar
import datetime as dt
from functools import lru_cache
from typing import Any

from ..core.errors import QueryError
from ..models.base import FittedModel
from .aggregates import Aggregate

_EPOCH = dt.datetime(1970, 1, 1, tzinfo=dt.timezone.utc)

#: Supported levels of the time hierarchy, finest to coarsest.
TIME_LEVELS = ("MINUTE", "HOUR", "DAY", "MONTH", "YEAR")

#: DatePart levels: aggregate over a calendar *component* across the
#: whole range (e.g. totals per day-of-week). The paper highlights these
#: as queries ModelarDB supports and InfluxDB does not (Section 7.3,
#: citing InfluxDB issue #6723). Each maps to the interval level that is
#: walked and the component extracted from each interval's start.
DATEPART_LEVELS = {
    "HOUROFDAY": "HOUR",
    "DAYOFWEEK": "DAY",
    "DAYOFMONTH": "DAY",
    "MONTHOFYEAR": "MONTH",
}

_WEEKDAYS = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")


def is_datepart(level: str) -> bool:
    """Whether ``level`` is a calendar component rather than an interval."""
    return level in DATEPART_LEVELS


def datepart_of(timestamp_ms: int, level: str) -> int:
    """The calendar component of a timestamp for a DatePart level."""
    moment = _to_datetime(timestamp_ms)
    if level == "HOUROFDAY":
        return moment.hour
    if level == "DAYOFWEEK":
        return moment.weekday()
    if level == "DAYOFMONTH":
        return moment.day
    if level == "MONTHOFYEAR":
        return moment.month
    raise QueryError(f"unknown DatePart level {level!r}")


def _to_datetime(timestamp_ms: int) -> dt.datetime:
    return _EPOCH + dt.timedelta(milliseconds=timestamp_ms)


def _to_ms(moment: dt.datetime) -> int:
    return int((moment - _EPOCH).total_seconds() * 1000)


@lru_cache(maxsize=16384)
def floor_to_level(timestamp_ms: int, level: str) -> int:
    """The start of the ``level`` interval containing the timestamp."""
    moment = _to_datetime(timestamp_ms)
    if level == "MINUTE":
        floored = moment.replace(second=0, microsecond=0)
    elif level == "HOUR":
        floored = moment.replace(minute=0, second=0, microsecond=0)
    elif level == "DAY":
        floored = moment.replace(hour=0, minute=0, second=0, microsecond=0)
    elif level == "MONTH":
        floored = moment.replace(
            day=1, hour=0, minute=0, second=0, microsecond=0
        )
    elif level == "YEAR":
        floored = moment.replace(
            month=1, day=1, hour=0, minute=0, second=0, microsecond=0
        )
    else:
        raise QueryError(f"unknown time level {level!r}")
    return _to_ms(floored)


@lru_cache(maxsize=16384)
def next_boundary(bucket_start_ms: int, level: str) -> int:
    """The start of the interval following the one starting here
    (Algorithm 6's ``updateForLevel``)."""
    moment = _to_datetime(bucket_start_ms)
    if level == "MINUTE":
        return bucket_start_ms + 60_000
    if level == "HOUR":
        return bucket_start_ms + 3_600_000
    if level == "DAY":
        return bucket_start_ms + 86_400_000
    if level == "MONTH":
        days = calendar.monthrange(moment.year, moment.month)[1]
        return bucket_start_ms + days * 86_400_000
    if level == "YEAR":
        days = 366 if calendar.isleap(moment.year) else 365
        return bucket_start_ms + days * 86_400_000
    raise QueryError(f"unknown time level {level!r}")


def rollup_segment(
    states: dict[int, Any],
    aggregate: Aggregate,
    model: FittedModel,
    segment_start: int,
    sampling_interval: int,
    first: int,
    last: int,
    column: int,
    scaling: float,
    level: str,
) -> None:
    """Fold one segment's clipped index range into per-bucket states.

    ``states`` maps the bucket key to the aggregate state; updated in
    place. For interval levels the key is the bucket's start timestamp;
    for DatePart levels (``DAYOFWEEK``, ...) it is the calendar
    component, so intervals sharing the component accumulate together.
    ``first``/``last`` are inclusive model indices (the query's time
    predicates have already clipped them).
    """
    part = DATEPART_LEVELS.get(level)
    walk_level = part if part is not None else level
    index = first
    first_timestamp = segment_start + first * sampling_interval
    bucket = floor_to_level(first_timestamp, walk_level)
    boundary = next_boundary(bucket, walk_level)
    while index <= last:
        # Largest index whose timestamp is strictly before the boundary;
        # the final interval includes the inclusive segment end.
        last_in_bucket = (boundary - 1 - segment_start) // sampling_interval
        last_in_bucket = min(last_in_bucket, last)
        if last_in_bucket >= index:
            key = bucket if part is None else datepart_of(bucket, level)
            state = states.get(key)
            if state is None:
                state = aggregate.initialize()
            states[key] = aggregate.iterate(
                state, model, index, last_in_bucket, column, scaling
            )
            index = last_in_bucket + 1
        bucket = boundary
        boundary = next_boundary(bucket, walk_level)


def parse_cube_function(name: str) -> tuple[str, str]:
    """Split ``CUBE_SUM_HOUR`` into (aggregate name, time level)."""
    parts = name.upper().split("_")
    if len(parts) != 3 or parts[0] != "CUBE":
        raise QueryError(
            f"malformed time-rollup function {name!r}; expected "
            "CUBE_<AGG>_<LEVEL>"
        )
    _, aggregate_name, level = parts
    if level not in TIME_LEVELS and level not in DATEPART_LEVELS:
        supported = ", ".join((*TIME_LEVELS, *DATEPART_LEVELS))
        raise QueryError(
            f"unknown time level {level!r}; supported: {supported}"
        )
    return aggregate_name, level


def format_bucket(bucket_key: int, level: str) -> str:
    """Human-readable bucket label (e.g. ``2016-04`` for MONTH).

    For DatePart levels the key is the calendar component itself.
    """
    if level in DATEPART_LEVELS:
        if level == "DAYOFWEEK":
            return _WEEKDAYS[bucket_key]
        return str(bucket_key)
    bucket_start_ms = bucket_key
    moment = _to_datetime(bucket_start_ms)
    if level == "YEAR":
        return f"{moment.year:04d}"
    if level == "MONTH":
        return f"{moment.year:04d}-{moment.month:02d}"
    if level == "DAY":
        return moment.strftime("%Y-%m-%d")
    if level == "HOUR":
        return moment.strftime("%Y-%m-%d %H:00")
    return moment.strftime("%Y-%m-%d %H:%M")
