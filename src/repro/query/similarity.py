"""Similarity search on models (the paper's future-work item ii).

Section 9 lists "supporting high level analytical queries, e.g.,
similarity search, to be performed directly on user-defined models" as
future work. This module implements whole-matching sub-sequence search
under Euclidean distance with *model-level pruning*:

1. every segment yields a value envelope ``[min, max]`` in O(1) for
   constant/linear models (reconstruction only for lossless ones);
2. a per-window lower bound on the distance is computed from the
   envelope alone (a point contributes at least its squared distance to
   the envelope interval), vectorised over all windows at once;
3. only windows whose lower bound beats the current k-th best distance
   are verified against reconstructed values.

On model-friendly data the overwhelming majority of windows is pruned
without reconstructing a single data point, which is exactly the benefit
the paper anticipates from pushing analytics onto models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.errors import QueryError
from .engine import QueryEngine
from .rewriter import Predicates, rewrite


@dataclass(frozen=True)
class Match:
    """One similarity-search result."""

    tid: int
    start_time: int
    distance: float


@dataclass
class SearchStats:
    """Pruning effectiveness counters (for tests and curiosity)."""

    windows: int = 0
    verified: int = 0

    @property
    def pruned_fraction(self) -> float:
        if self.windows == 0:
            return 0.0
        return 1.0 - self.verified / self.windows


def similarity_search(
    engine: QueryEngine,
    pattern: Sequence[float],
    k: int = 1,
    tids: Sequence[int] | None = None,
    stats: SearchStats | None = None,
) -> list[Match]:
    """Find the ``k`` sub-sequences closest to ``pattern``.

    The pattern is compared against every aligned window of every
    requested series under the Euclidean distance; windows containing
    gaps are skipped. Returns matches sorted by distance.
    """
    query = np.asarray(pattern, dtype=np.float64)
    if query.ndim != 1 or len(query) < 1:
        raise QueryError("the search pattern must be a non-empty sequence")
    if k < 1:
        raise QueryError("k must be at least 1")

    metadata = engine.metadata
    requested = list(tids) if tids is not None else sorted(metadata.all_tids())
    best: list[Match] = []
    counters = stats if stats is not None else SearchStats()

    for tid in requested:
        _search_series(engine, tid, query, k, best, counters)
    best.sort(key=lambda match: match.distance)
    return best[:k]


def _search_series(
    engine: QueryEngine,
    tid: int,
    query: np.ndarray,
    k: int,
    best: list[Match],
    stats: SearchStats,
) -> None:
    envelope = _series_envelope(engine, tid)
    if envelope is None:
        return
    timestamps, lower, upper, segments = envelope
    length = len(query)
    n_windows = len(timestamps) - length + 1
    if n_windows < 1:
        return
    stats.windows += n_windows

    # Vectorised envelope lower bound: per point, the squared distance
    # from the pattern value to the [lower, upper] interval; per window,
    # the sum of those contributions, built offset by offset (pattern
    # lengths are small compared to series lengths).
    window_bounds = np.zeros(n_windows)
    for offset, value in enumerate(query):
        below = np.maximum(lower[offset:offset + n_windows] - value, 0.0)
        above = np.maximum(value - upper[offset:offset + n_windows], 0.0)
        window_bounds += np.maximum(below, above) ** 2

    # Windows crossing a gap are invalid: mark via NaN in the envelope.
    invalid = np.isnan(lower) | np.isnan(upper)
    if invalid.any():
        bad = np.convolve(invalid.astype(np.int64), np.ones(length, dtype=np.int64))
        window_bounds[bad[length - 1:length - 1 + n_windows] > 0] = np.inf

    order = np.argsort(window_bounds)
    values_cache: np.ndarray | None = None
    for index in order:
        bound = window_bounds[index]
        threshold = (
            best[k - 1].distance ** 2 if len(best) >= k else np.inf
        )
        if bound > threshold:
            break  # sorted by bound: nothing later can qualify
        if not np.isfinite(bound):
            break
        if values_cache is None:
            values_cache = _reconstruct(engine, tid, segments, len(timestamps))
        stats.verified += 1
        window = values_cache[index:index + length]
        if np.isnan(window).any():
            continue
        distance = float(np.sqrt(((window - query) ** 2).sum()))
        if len(best) < k or distance < best[k - 1].distance:
            best.append(Match(tid, int(timestamps[index]), distance))
            best.sort(key=lambda match: match.distance)
            del best[k:]


def _series_envelope(engine: QueryEngine, tid: int):
    """Per-point [lower, upper] envelope from the series' segments.

    Constant-time models answer min/max per segment in O(1); gaps become
    NaN stretches. Returns (timestamps, lower, upper, segment rows).
    """
    plan = rewrite(Predicates(tids=frozenset({tid})), engine.metadata)
    rows = list(engine._segment_view().rows(plan))
    if not rows:
        return None
    rows.sort(key=lambda view_row: view_row.row.start_time)
    si = rows[0].row.sampling_interval
    start = rows[0].row.start_time
    end = max(view_row.row.end_time for view_row in rows)
    n_points = (end - start) // si + 1
    timestamps = start + np.arange(n_points, dtype=np.int64) * si
    lower = np.full(n_points, np.nan)
    upper = np.full(n_points, np.nan)
    for view_row in rows:
        row = view_row.row
        first_index = (row.start_time - start) // si
        last_index = (row.end_time - start) // si
        low = view_row.model.slice_min(0, row.length - 1, row.column)
        high = view_row.model.slice_max(0, row.length - 1, row.column)
        lower[first_index:last_index + 1] = low / row.scaling
        upper[first_index:last_index + 1] = high / row.scaling
    return timestamps, lower, upper, rows


def _reconstruct(engine, tid, rows, n_points) -> np.ndarray:
    """Full reconstruction of one series (only for verified candidates)."""
    si = rows[0].row.sampling_interval
    start = rows[0].row.start_time
    values = np.full(n_points, np.nan)
    for view_row in rows:
        row = view_row.row
        first_index = (row.start_time - start) // si
        column = view_row.model.column_values(row.column) / row.scaling
        values[first_index:first_index + row.length] = column
    return values
