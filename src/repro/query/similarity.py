"""Similarity search on models (the paper's future-work item ii).

Section 9 lists "supporting high level analytical queries, e.g.,
similarity search, to be performed directly on user-defined models" as
future work. The implementation lives in :mod:`repro.query.analytics`
(which also exposes it through SQL as ``SIMILAR TO``): one Segment View
pass builds a :class:`~repro.query.analytics.SignatureIndex` of
per-segment level envelopes, a vectorised per-window lower bound prunes
from model parameters alone, and only windows whose bound beats the
current k-th best distance are verified against reconstructed values.

This module keeps the original programmatic entry point —
``similarity_search(engine, pattern, k, tids)`` — as a thin adapter
over that index.
"""

from __future__ import annotations

from typing import Sequence

from .analytics import Match, SearchStats, SignatureIndex, search
from .engine import QueryEngine
from .rewriter import Predicates, rewrite

__all__ = ["Match", "SearchStats", "similarity_search"]


def similarity_search(
    engine: QueryEngine,
    pattern: Sequence[float],
    k: int = 1,
    tids: Sequence[int] | None = None,
    stats: SearchStats | None = None,
) -> list[Match]:
    """Find the ``k`` sub-sequences closest to ``pattern``.

    The pattern is compared against every aligned window of every
    requested series under the Euclidean distance; windows containing
    gaps are skipped. Returns matches sorted by distance.
    """
    predicates = Predicates(
        tids=frozenset(tids) if tids is not None else None
    )
    plan = rewrite(predicates, engine.metadata)
    index = SignatureIndex(engine._segment_view().rows(plan))
    return search(index, pattern, k, stats)
