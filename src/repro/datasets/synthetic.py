"""Shared machinery for the synthetic data sets.

The real EP and EH data sets are proprietary (339 and 583 GiB of energy
production data), so the generators in :mod:`repro.datasets.ep` and
:mod:`repro.datasets.eh` synthesise scaled-down equivalents that
reproduce the *structure* the experiments depend on — regime-switching
signals (calm stretches a constant model captures, ramps a linear model
captures, turbulent stretches only lossless compression captures),
controllable cross-series correlation, gaps, and float32 values.
"""

from __future__ import annotations

import numpy as np

#: 2016-01-04 00:00:00 UTC in milliseconds — a Monday, so day/month
#: rollups produce stable calendar buckets across runs.
DEFAULT_START_MS = 1_451_865_600_000


def regime_signal(
    rng: np.random.Generator,
    n_points: int,
    base: float = 500.0,
    amplitude: float = 200.0,
    daily_period: int | None = None,
    hold_fraction: float = 0.45,
    ramp_fraction: float = 0.35,
    walk_scale: float = 1.0,
) -> np.ndarray:
    """A regime-switching signal: holds, ramps and random walks.

    Piecewise segments of geometric length alternate between *hold*
    (constant — PMC territory), *ramp* (linear — Swing territory) and
    *walk* (turbulent — Gorilla territory), optionally on top of a daily
    sinusoid. This is the qualitative structure of energy production
    series the paper's model mix results (Figs. 16-17) reflect.
    """
    signal = np.empty(n_points)
    level = base + rng.normal(0, amplitude / 4)
    position = 0
    while position < n_points:
        length = min(int(rng.geometric(1.0 / 80)) + 5, n_points - position)
        regime = rng.random()
        if regime < hold_fraction:
            chunk = np.full(length, level)
        elif regime < hold_fraction + ramp_fraction:
            slope = rng.normal(0, amplitude / 200)
            chunk = level + slope * np.arange(length)
            level = chunk[-1]
        else:
            steps = rng.normal(0, walk_scale, length)
            chunk = level + np.cumsum(steps)
            level = chunk[-1]
        signal[position:position + length] = chunk
        position += length
        # Occasionally jump to a new operating level.
        if rng.random() < 0.15:
            level = base + rng.normal(0, amplitude / 2)
    if daily_period:
        phase = 2 * np.pi * np.arange(n_points) / daily_period
        signal = signal + amplitude / 4 * np.sin(phase)
    return signal


def random_walk(
    rng: np.random.Generator,
    n_points: int,
    base: float = 100.0,
    step_scale: float = 0.5,
) -> np.ndarray:
    """A plain random walk (the weakly structured EH-style signal)."""
    return base + np.cumsum(rng.normal(0, step_scale, n_points))


def sample_and_hold_noise(
    rng: np.random.Generator,
    n_points: int,
    sigma: float,
    mean_duration: int = 200,
) -> np.ndarray:
    """Slowly varying measurement bias (sample-and-hold).

    Real sensor error is dominated by calibration bias that drifts on a
    scale of minutes-to-hours, not by per-sample white noise; modelling
    it this way preserves the exact-repeat runs of the underlying signal
    (white noise would break every run and make lossless constant models
    useless, which real data shows they are not).
    """
    noise = np.empty(n_points)
    position = 0
    while position < n_points:
        duration = min(
            int(rng.geometric(1.0 / mean_duration)) + 1, n_points - position
        )
        noise[position:position + duration] = rng.normal(0, sigma)
        position += duration
    return noise


def inject_gaps(
    rng: np.random.Generator,
    values: np.ndarray,
    gap_probability: float,
    mean_gap_length: int = 30,
) -> list[float | None]:
    """Replace random windows with gaps (``None`` values).

    ``gap_probability`` is the per-point chance a new gap *starts*; the
    gap then lasts a geometric number of points.
    """
    result: list[float | None] = [float(v) for v in values]
    position = 1  # keep the first point so series alignment is stable
    n = len(values)
    while position < n - 1:
        if rng.random() < gap_probability:
            length = min(
                int(rng.geometric(1.0 / mean_gap_length)) + 1, n - 1 - position
            )
            for index in range(position, position + length):
                result[index] = None
            position += length
        position += 1
    return result


def quantize(values: np.ndarray) -> np.ndarray:
    """Round to float32, the value type ModelarDB and the formats store."""
    return np.float32(values).astype(np.float64)


def sensor_resolution(values: np.ndarray, resolution: float) -> np.ndarray:
    """Quantise values to a sensor's measurement resolution.

    Real sensors report a limited number of significant digits, which is
    why production time series contain long runs of *identical* values —
    the property that lets PMC-Mean dominate at a 0 % error bound
    (Fig. 16) and model-based storage reach its headline compression
    ratios. Synthetic white noise has none of it, so the generators
    apply this after adding noise.
    """
    return np.round(values / resolution) * resolution
