"""Synthetic "EH"-like data set (Section 7.2).

The real EH is 583 GiB of high-frequency (SI ≈ 100 ms) energy data with
two dimensions — Location: Entity → Park → Country and Measure:
Concrete → Category — and only *weak* correlation between series. The
consequences the experiments depend on, reproduced here:

* series are mostly independent random walks with a small shared
  park-level component, so single-series compression (ModelarDB v1) is
  marginally better than MMGC at low error bounds while MMGC wins at a
  10 % bound (Fig. 15);
* the distance-based correlation rule of thumb
  ``(1/max(levels))/|dimensions| = (1/3)/2 ≈ 0.1667`` groups series that
  share a park and a concrete measure name (Fig. 18);
* fewer but longer series than EP, making the per-group read overhead of
  single-series queries visible (Fig. 22).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.dimensions import Dimension, DimensionSet
from ..core.timeseries import TimeSeries
from .synthetic import (
    DEFAULT_START_MS,
    inject_gaps,
    quantize,
    random_walk,
    sensor_resolution,
)

#: EH's approximate sampling interval: 100 milliseconds.
EH_SAMPLING_INTERVAL = 100

#: The rule-of-thumb lowest distance for EH's dimensions (Section 7.3).
EH_LOWEST_DISTANCE = (1.0 / 3.0) / 2.0


@dataclass
class EHDataset:
    series: list[TimeSeries]
    dimensions: DimensionSet
    sampling_interval: int = EH_SAMPLING_INTERVAL
    start_time: int = DEFAULT_START_MS

    @property
    def end_time(self) -> int:
        return max(ts.end_time for ts in self.series)

    def data_points(self) -> int:
        return sum(len(ts) - ts.gap_count() for ts in self.series)

    def correlation(self, distance: float | None = None) -> list[str]:
        """The distance-based correlation clause used for EH."""
        if distance is None:
            distance = EH_LOWEST_DISTANCE
        return [f"{distance:.8f}"]


def generate_eh(
    n_parks: int = 2,
    entities_per_park: int = 4,
    measures: tuple[str, ...] = ("ActivePower", "WindSpeed"),
    n_points: int = 20_000,
    seed: int = 1,
    shared_fraction: float = 0.25,
    gap_probability: float = 0.0002,
    resolution: float = 0.05,
    step_scale: float = 0.005,
    offset_scale: float = 1.0,
    park_separation: float = 200.0,
) -> EHDataset:
    """Generate an EH-like data set.

    ``shared_fraction`` controls how much of each series is the shared
    park-level signal (the rest is an independent walk): around 0.25 the
    series are weakly correlated, which is EH's defining property. At
    100 ms the physical signal moves little between samples, so values
    are slow walks quantised to the sensor ``resolution`` — individually
    very compressible, yet far enough apart across series that group
    compression only pays off at high error bounds (Fig. 15).
    """
    rng = np.random.default_rng(seed)
    location = Dimension("Location", ["Entity", "Park", "Country"])
    measure_dim = Dimension("Measure", ["Concrete", "Category"])
    dimensions = DimensionSet([location, measure_dim])

    categories = {"ActivePower": "Power", "WindSpeed": "Ambient"}
    timestamps = DEFAULT_START_MS + np.arange(n_points) * EH_SAMPLING_INTERVAL
    series: list[TimeSeries] = []
    tid = 1
    for park_index in range(n_parks):
        park = f"park{park_index}"
        # Parks operate at clearly different levels (different turbine
        # models/wind regimes), so no error bound in the evaluated range
        # lets series from different parks share a model — grouping
        # across parks (too large a distance) always hurts (Fig. 18).
        park_signals = {
            name: random_walk(
                rng, n_points,
                base=100.0 + park_separation * park_index,
                step_scale=step_scale,
            )
            for name in measures
        }
        for entity_index in range(entities_per_park):
            entity = f"turbine{park_index}{entity_index:02d}"
            for name in measures:
                # A static per-series offset separates the series of a
                # group by more than the low error bounds allow, while
                # leaving each series individually very compressible —
                # group compression then only pays at high bounds.
                offset = rng.normal(0, offset_scale)
                own = random_walk(
                    rng, n_points, base=offset, step_scale=step_scale
                )
                values = quantize(
                    sensor_resolution(
                        shared_fraction * park_signals[name]
                        + (1.0 - shared_fraction) * (100.0 + own),
                        resolution,
                    )
                )
                with_gaps = inject_gaps(rng, values, gap_probability)
                series.append(
                    TimeSeries(
                        tid,
                        EH_SAMPLING_INTERVAL,
                        timestamps,
                        with_gaps,
                        name=f"{entity}_{name}.gz",
                    )
                )
                location.assign(tid, (entity, park, "Denmark"))
                measure_dim.assign(
                    tid, (name, categories.get(name, "Other"))
                )
                tid += 1

    return EHDataset(series=series, dimensions=dimensions)
