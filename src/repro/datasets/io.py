"""CSV (optionally gzipped) round-trip for time series and dimensions.

The paper ingests gzipped CSV files (one per series) plus a dimensions
CSV; these helpers reproduce that input pipeline for the ingestion
benchmark and the examples.

File formats
------------
Series file (``<name>.csv`` or ``.csv.gz``): two columns, no header::

    <timestamp_ms>,<value>

Gap points are simply absent rows (the regular-with-gaps representation
is reconstructed on load from the sampling interval).

Dimensions file: header then one row per series::

    tid,dimension,member1,member2,...

where members are ordered most-detailed-first, matching
:class:`~repro.core.dimensions.Dimension`.
"""

from __future__ import annotations

import csv
import gzip
import os
from pathlib import Path
from typing import Sequence

from ..core.dimensions import Dimension, DimensionSet
from ..core.errors import TimeSeriesError
from ..core.timeseries import TimeSeries


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_series_csv(
    ts: TimeSeries, directory: str | os.PathLike, compress: bool = True
) -> Path:
    """Write one series to ``<name or tid>.csv[.gz]``; returns the path."""
    stem = ts.name or f"series_{ts.tid}"
    stem = stem.removesuffix(".gz").removesuffix(".csv")
    suffix = ".csv.gz" if compress else ".csv"
    path = Path(directory) / f"{stem}{suffix}"
    with _open_text(path, "w") as handle:
        for point in ts:
            if point.value is not None:
                handle.write(f"{point.timestamp},{point.value!r}\n")
    return path


def read_series_csv(
    path: str | os.PathLike, tid: int, sampling_interval: int
) -> TimeSeries:
    """Load one series file; gaps reappear from missing grid rows."""
    path = Path(path)
    timestamps: list[int] = []
    values: list[float] = []
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            ts_text, _, value_text = line.partition(",")
            timestamps.append(int(ts_text))
            values.append(float(value_text))
    if not timestamps:
        raise TimeSeriesError(f"series file {path} is empty")
    return TimeSeries(
        tid, sampling_interval, timestamps, values, name=path.name
    )


def write_dimensions_csv(
    dimensions: DimensionSet, directory: str | os.PathLike
) -> Path:
    """Write all dimension assignments to ``dimensions.csv``."""
    path = Path(directory) / "dimensions.csv"
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["tid", "dimension", "members"])
        for dimension in dimensions:
            for tid in dimension.tids():
                members = list(reversed(dimension.path(tid)))
                writer.writerow([tid, dimension.name, *members])
    return path


def read_dimensions_csv(
    path: str | os.PathLike, levels: dict[str, Sequence[str]]
) -> DimensionSet:
    """Load ``dimensions.csv``; ``levels`` gives each dimension's level
    names (most-detailed-first), which the CSV does not carry."""
    dimensions = {
        name: Dimension(name, level_names)
        for name, level_names in levels.items()
    }
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        next(reader)  # header
        for row in reader:
            tid, dimension_name, *members = row
            dimensions[dimension_name].assign(int(tid), members)
    return DimensionSet(list(dimensions.values()))


def write_dataset(
    series: Sequence[TimeSeries],
    dimensions: DimensionSet | None,
    directory: str | os.PathLike,
    compress: bool = True,
) -> list[Path]:
    """Write a whole data set (series files + dimensions.csv)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [write_series_csv(ts, directory, compress) for ts in series]
    if dimensions is not None and len(dimensions):
        write_dimensions_csv(dimensions, directory)
    return paths
