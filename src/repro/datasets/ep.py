"""Synthetic "EP"-like data set (Section 7.2).

The real EP is 339 GiB of regular energy-production time series with
gaps: SI = 60 s over 508 days, two dimensions — Production: Entity → Type
and Measure: Concrete → Category — and strong correlation between the
production measures of one entity. This generator reproduces that
structure at a configurable scale:

* each entity has one latent regime-switching production signal;
* its production measures are scaled copies with small relative noise
  (strongly correlated — MMGC's best case, Fig. 14);
* each entity also reports one temperature measure in its own category,
  correlated with nothing, so the correlation hints must discriminate;
* occasional gaps, float32 values.

The paper's EP correlation hint ``Production 0, Measure 1 ProductionMWh``
is exported as :data:`EP_CORRELATION`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.dimensions import Dimension, DimensionSet
from ..core.timeseries import TimeSeries
from .synthetic import (
    DEFAULT_START_MS,
    inject_gaps,
    quantize,
    random_walk,
    regime_signal,
    sample_and_hold_noise,
    sensor_resolution,
)

#: The paper's manually tuned correlation clause for EP (Section 7.3).
EP_CORRELATION = ["Production 0, Measure 1 ProductionMWh"]

#: EP's sampling interval: 60 seconds, in milliseconds.
EP_SAMPLING_INTERVAL = 60_000


@dataclass
class EPDataset:
    """The generated series plus everything the experiments need."""

    series: list[TimeSeries]
    dimensions: DimensionSet
    sampling_interval: int = EP_SAMPLING_INTERVAL
    start_time: int = DEFAULT_START_MS
    #: Tids of production measures (the M-AGG member filter target).
    production_tids: list[int] = field(default_factory=list)

    @property
    def end_time(self) -> int:
        return max(ts.end_time for ts in self.series)

    def data_points(self) -> int:
        return sum(len(ts) - ts.gap_count() for ts in self.series)


def generate_ep(
    n_entities: int = 6,
    measures_per_entity: int = 4,
    n_points: int = 4_000,
    seed: int = 0,
    gap_probability: float = 0.0005,
    noise_percent: float = 0.001,
    resolution: float = 0.1,
    include_temperature: bool = True,
) -> EPDataset:
    """Generate an EP-like data set.

    Parameters mirror the structural knobs: ``measures_per_entity``
    production measures per entity (these form the groups), relative
    noise between correlated measures in percent, the sensor resolution
    values are quantised to (noise below it yields the exact-repeat runs
    real sensor data exhibits), and the per-point gap start probability.
    """
    rng = np.random.default_rng(seed)
    production = Dimension("Production", ["Entity", "Type"])
    measure = Dimension("Measure", ["Concrete", "Category"])
    dimensions = DimensionSet([production, measure])

    types = ("Wind", "Solar", "Hydro")
    timestamps = DEFAULT_START_MS + np.arange(n_points) * EP_SAMPLING_INTERVAL
    series: list[TimeSeries] = []
    production_tids: list[int] = []
    tid = 1
    for entity_index in range(n_entities):
        entity = f"plant{entity_index:03d}"
        entity_type = types[entity_index % len(types)]
        # Pure regime switching, no smooth overlay: production plants
        # hold an operating level exactly (including full stops), ramp,
        # or fluctuate — which is what yields the exact-repeat runs and
        # the PMC-heavy model mix of Fig. 16.
        signal = regime_signal(rng, n_points, base=500.0, amplitude=200.0)
        signal = np.maximum(signal, 0.0)
        noise_sigma = noise_percent / 100.0 * 500.0
        for measure_index in range(measures_per_entity):
            # Production measures of one entity track the same latent
            # signal with slowly drifting calibration bias below the
            # sensor resolution, so redundant meters mostly report
            # *identical* quantised values in long exact-repeat runs —
            # the strong correlation the real EP exhibits.
            noise = sample_and_hold_noise(rng, n_points, noise_sigma)
            values = quantize(
                sensor_resolution(signal + noise, resolution)
            )
            with_gaps = inject_gaps(rng, values, gap_probability)
            series.append(
                TimeSeries(
                    tid,
                    EP_SAMPLING_INTERVAL,
                    timestamps,
                    with_gaps,
                    name=f"{entity}_prod{measure_index}.gz",
                )
            )
            production.assign(tid, (entity, entity_type))
            measure.assign(
                tid, (f"{entity}_prod{measure_index}", "ProductionMWh")
            )
            production_tids.append(tid)
            tid += 1
        if include_temperature:
            temperature = quantize(
                sensor_resolution(
                    random_walk(rng, n_points, base=12.0, step_scale=0.05),
                    resolution,
                )
            )
            series.append(
                TimeSeries(
                    tid,
                    EP_SAMPLING_INTERVAL,
                    timestamps,
                    temperature,
                    name=f"{entity}_temp.gz",
                )
            )
            production.assign(tid, (entity, entity_type))
            measure.assign(tid, (f"{entity}_temp", "Temperature"))
            tid += 1

    return EPDataset(
        series=series,
        dimensions=dimensions,
        production_tids=production_tids,
    )


def turbine_temperatures(
    n_points: int = 3_000, seed: int = 11
) -> list[TimeSeries]:
    """Three co-located wind turbine temperature series (Section 5.2's
    MMC-vs-MMGC demonstration data)."""
    rng = np.random.default_rng(seed)
    timestamps = DEFAULT_START_MS + np.arange(n_points) * EP_SAMPLING_INTERVAL
    ambient = regime_signal(
        rng, n_points, base=15.0, amplitude=6.0, daily_period=1440,
        walk_scale=0.05,
    )
    series = []
    for tid in range(1, 4):
        # Each sensor sees the shared ambient signal plus its own offset
        # and measurement noise, so group compression pays off more as
        # the error bound grows (the Section 5.2 result's shape).
        offset = rng.normal(0, 0.1)
        noise = rng.normal(0, 0.05, n_points)
        values = quantize(ambient + offset + noise)
        series.append(
            TimeSeries(
                tid,
                EP_SAMPLING_INTERVAL,
                timestamps,
                values,
                name=f"turbine{tid}_temperature.gz",
            )
        )
    return series
