"""Synthetic data sets standing in for the paper's proprietary EP/EH."""

from .eh import EH_LOWEST_DISTANCE, EH_SAMPLING_INTERVAL, EHDataset, generate_eh
from .ep import (
    EP_CORRELATION,
    EP_SAMPLING_INTERVAL,
    EPDataset,
    generate_ep,
    turbine_temperatures,
)
from .io import (
    read_dimensions_csv,
    read_series_csv,
    write_dataset,
    write_dimensions_csv,
    write_series_csv,
)
from .synthetic import (
    DEFAULT_START_MS,
    inject_gaps,
    quantize,
    random_walk,
    regime_signal,
)

__all__ = [
    "EH_LOWEST_DISTANCE",
    "EH_SAMPLING_INTERVAL",
    "EHDataset",
    "generate_eh",
    "EP_CORRELATION",
    "EP_SAMPLING_INTERVAL",
    "EPDataset",
    "generate_ep",
    "turbine_temperatures",
    "read_dimensions_csv",
    "read_series_csv",
    "write_dataset",
    "write_dimensions_csv",
    "write_series_csv",
    "DEFAULT_START_MS",
    "inject_gaps",
    "quantize",
    "random_walk",
    "regime_signal",
]
