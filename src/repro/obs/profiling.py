"""Opt-in cProfile wrapping of the hot paths.

Setting ``REPRO_PROFILE=1`` in the environment makes the CLI entry point
(:mod:`repro.__main__`) run the whole invocation — shell, cluster driver,
``serve``, ``loadgen`` — under :mod:`cProfile` and dump the stats when
the process exits: a binary ``pstats`` file (``REPRO_PROFILE_OUT``,
default ``repro-profile.pstats``) for ``snakeviz``/``pstats`` digging,
plus the top functions by cumulative time on stderr for a first look.

Deliberately process-global and zero-cost when the variable is unset —
an operator can profile a production-shaped ``serve`` run by flipping
one environment variable, with no code changes and no overhead
otherwise.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import sys
from contextlib import contextmanager
from typing import Iterator

_ENV_FLAG = "REPRO_PROFILE"
_ENV_OUT = "REPRO_PROFILE_OUT"
_DEFAULT_OUT = "repro-profile.pstats"
_TOP_FUNCTIONS = 25


def profiling_enabled() -> bool:
    """True when ``REPRO_PROFILE`` is set to a truthy value."""
    return os.environ.get(_ENV_FLAG, "").strip().lower() in (
        "1", "true", "yes", "on"
    )


@contextmanager
def maybe_profile(out=None) -> Iterator[None]:
    """Profile the enclosed block iff ``REPRO_PROFILE`` is set.

    On exit the profile is dumped to ``REPRO_PROFILE_OUT`` and a
    cumulative-time summary is printed to ``out`` (default stderr).
    A no-op context manager otherwise.
    """
    if not profiling_enabled():
        yield
        return
    out = out if out is not None else sys.stderr
    profile = cProfile.Profile()
    profile.enable()
    try:
        yield
    finally:
        profile.disable()
        path = os.environ.get(_ENV_OUT, _DEFAULT_OUT)
        try:
            profile.dump_stats(path)
        except OSError as error:  # unwritable cwd: keep the summary
            print(f"profile: cannot write {path}: {error}", file=out)
            path = None
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(_TOP_FUNCTIONS)
        print(
            "\n=== REPRO_PROFILE summary (top "
            f"{_TOP_FUNCTIONS} by cumulative time) ===",
            file=out,
        )
        print(buffer.getvalue(), file=out, end="")
        if path:
            print(f"profile written to {path}", file=out)
