"""The metric catalog: the single source of truth for metric names.

Every metric the system records is *declared* here before any code can
record into it — :class:`~repro.obs.registry.MetricsRegistry` refuses to
create an instrument whose name (or label set, or kind) does not match
its catalog entry. That rule is what makes the documentation
CI-checkable: ``docs/METRICS.md`` is asserted equal to this catalog by
``scripts/check_docs.py``, so a metric cannot be added, renamed or
dropped without the reference table following along.

Naming convention: ``<layer>.<what>_total`` for monotonic counters,
``<layer>.<what>_seconds`` for latency histograms (recorded in seconds,
reported with millisecond quantiles), plain ``<layer>.<what>`` for
gauges. Labels multiply a metric into one instrument per label value
(e.g. ``ingest.segments_total{model=PMC-Mean}``).
"""

from __future__ import annotations

from dataclasses import dataclass

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str
    labels: tuple[str, ...] = ()
    description: str = ""


_SPECS = (
    # -- ingestion ------------------------------------------------------
    MetricSpec(
        "ingest.points_total", COUNTER, (),
        "Raw data points ingested (gap points excluded).",
    ),
    MetricSpec(
        "ingest.segments_total", COUNTER, ("model",),
        "Segments emitted, per winning model type.",
    ),
    MetricSpec(
        "ingest.segment_bytes_total", COUNTER, ("model",),
        "Segment bytes emitted, per winning model type.",
    ),
    MetricSpec(
        "ingest.model_fits_total", COUNTER, ("model",),
        "Model fit attempts in the cascade, per model type.",
    ),
    MetricSpec(
        "ingest.splits_total", COUNTER, (),
        "Dynamic group splits (Algorithm 3).",
    ),
    MetricSpec(
        "ingest.joins_total", COUNTER, (),
        "Dynamic group joins (Algorithm 4).",
    ),
    MetricSpec(
        "ingest.chunks_total", COUNTER, (),
        "Columnar chunks fitted through the batch ingestion path.",
    ),
    MetricSpec(
        "ingest.scalar_fallback_ticks_total", COUNTER, (),
        "Ticks the batch path handed to the scalar loop because a "
        "dynamic split was active.",
    ),
    MetricSpec(
        "ingest.revisions_total", COUNTER, (),
        "Superseding segment revisions emitted by the correction path.",
    ),
    MetricSpec(
        "ingest.out_of_order_points_total", COUNTER, (),
        "Correction points that arrived after their group window was "
        "already flushed (late or corrected data).",
    ),
    MetricSpec(
        "ingest.flush_seconds", HISTOGRAM, (),
        "Latency of one bulk write landing in the segment store.",
    ),
    # -- query engine ---------------------------------------------------
    MetricSpec(
        "query.statements_total", COUNTER, (),
        "Statements executed by the query engine (cache misses only "
        "when served through the result cache).",
    ),
    MetricSpec(
        "query.execute_seconds", HISTOGRAM, (),
        "End-to-end engine execution latency per statement.",
    ),
    MetricSpec(
        "query.segments_scanned_total", COUNTER, (),
        "Stored segments visited by query execution.",
    ),
    MetricSpec(
        "query.partitions_scanned_total", COUNTER, (),
        "Gid partitions scanned after Tid/member rewriting.",
    ),
    MetricSpec(
        "query.partitions_pruned_total", COUNTER, (),
        "Gid partitions skipped entirely by predicate push-down.",
    ),
    MetricSpec(
        "query.rows_returned_total", COUNTER, (),
        "Result rows produced by the engine.",
    ),
    MetricSpec(
        "query.segment_cache_hits_total", COUNTER, (),
        "Decoded-model cache hits (model decode skipped).",
    ),
    MetricSpec(
        "query.segment_cache_misses_total", COUNTER, (),
        "Decoded-model cache misses (model decoded from parameters).",
    ),
    MetricSpec(
        "query.pushdown_subtrees_total", COUNTER, ("decision",),
        "Select-list subtrees routed per plan, by pushdown decision "
        "(segment = answered from model parameters, materialize = "
        "reconstructs data points).",
    ),
    MetricSpec(
        "query.rows_skipped_materialization_total", COUNTER, (),
        "Data points whose reconstruction was skipped because the "
        "aggregate folded model parameters directly.",
    ),
    MetricSpec(
        "query.columnar_blocks_total", COUNTER, (),
        "(ticks x series) blocks decoded by the columnar read path.",
    ),
    MetricSpec(
        "query.analytics_forecasts_total", COUNTER, (),
        "Forecast points produced by FORECAST(TS, horizon) statements, "
        "extrapolated from model parameters.",
    ),
    MetricSpec(
        "query.analytics_similarity_total", COUNTER, (),
        "SIMILAR TO searches executed.",
    ),
    MetricSpec(
        "query.analytics_windows_total", COUNTER, (),
        "Candidate windows considered by SIMILAR TO searches.",
    ),
    MetricSpec(
        "query.analytics_windows_pruned_total", COUNTER, (),
        "Candidate windows discarded by the envelope lower bound "
        "without reconstructing a single data point.",
    ),
    MetricSpec(
        "query.analytics_anomalies_total", COUNTER, (),
        "Segment boundaries flagged anomalous while computing the "
        "Segment view's Anomaly column.",
    ),
    MetricSpec(
        "query.analytics_seconds", HISTOGRAM, (),
        "Execution latency of the analytics stage (forecast "
        "extrapolation or similarity search).",
    ),
    MetricSpec(
        "query.block_decode_seconds", HISTOGRAM, (),
        "Per-scan time spent decoding segments into columnar blocks.",
    ),
    # -- storage --------------------------------------------------------
    MetricSpec(
        "storage.segments_written_total", COUNTER, (),
        "Segment rows appended to the store.",
    ),
    MetricSpec(
        "storage.bytes_written_total", COUNTER, (),
        "Encoded segment bytes appended to the store.",
    ),
    MetricSpec(
        "storage.write_seconds", HISTOGRAM, (),
        "Latency of one segment bulk write at the storage layer.",
    ),
    MetricSpec(
        "storage.segments_read_total", COUNTER, (),
        "Segment rows yielded by storage scans.",
    ),
    MetricSpec(
        "storage.bytes_read_total", COUNTER, (),
        "Partition bytes read from disk by storage scans "
        "(FileStorage only; the memory store reads no bytes).",
    ),
    MetricSpec(
        "storage.read_seconds", HISTOGRAM, (),
        "Latency of reading one partition file (FileStorage only).",
    ),
    # -- cluster (master side) -----------------------------------------
    MetricSpec(
        "cluster.rpc_total", COUNTER, ("method",),
        "RPC requests posted to workers, per method.",
    ),
    MetricSpec(
        "cluster.rpc_retries_total", COUNTER, (),
        "RPC requests re-sent after a reply timeout.",
    ),
    MetricSpec(
        "cluster.rpc_timeouts_total", COUNTER, (),
        "Reply waits that expired (each triggers a retry or a failover).",
    ),
    MetricSpec(
        "cluster.worker_failures_total", COUNTER, (),
        "Workers declared dead (process exit or silence through retries).",
    ),
    MetricSpec(
        "cluster.failovers_total", COUNTER, (),
        "Group re-assignments performed while recovering a dead worker.",
    ),
    MetricSpec(
        "cluster.worker_busy_seconds_total", COUNTER, ("worker",),
        "Cumulative worker-reported busy seconds, per worker — the "
        "spread across workers is the per-worker lag.",
    ),
    # -- sharded serving tier (master side) ----------------------------
    MetricSpec(
        "shard.queries_total", COUNTER, (),
        "Queries scatter-gathered by the sharded serving tier.",
    ),
    MetricSpec(
        "shard.subqueries_total", COUNTER, ("shard",),
        "Routed subqueries answered, per shard.",
    ),
    MetricSpec(
        "shard.shard_busy_seconds_total", COUNTER, ("shard",),
        "Worker-reported execution seconds, per shard — the skew "
        "signal the rebalancer acts on.",
    ),
    MetricSpec(
        "shard.failover_retries_total", COUNTER, (),
        "Subqueries replayed on another replica after an owner died "
        "mid-scatter.",
    ),
    MetricSpec(
        "shard.lost_workers_total", COUNTER, (),
        "Workers retired from the shard map (crash or RPC silence).",
    ),
    MetricSpec(
        "shard.rebalances_total", COUNTER, (),
        "Hot shards moved to a less busy worker.",
    ),
    MetricSpec(
        "shard.map_generation", GAUGE, (),
        "Current shard-map generation (bumps on every placement "
        "change; keys the serving result cache).",
    ),
    MetricSpec(
        "shard.merge_seconds", HISTOGRAM, (),
        "Master-side time merging per-shard partial results.",
    ),
    # -- server ---------------------------------------------------------
    MetricSpec(
        "server.connections_total", COUNTER, (),
        "TCP connections accepted.",
    ),
    MetricSpec(
        "server.requests_total", COUNTER, (),
        "Query requests received (before admission).",
    ),
    MetricSpec(
        "server.accepted_total", COUNTER, (),
        "Query requests admitted to the executor pool.",
    ),
    MetricSpec(
        "server.queued_total", COUNTER, (),
        "Admitted requests that had to wait for an executor slot.",
    ),
    MetricSpec(
        "server.rejected_busy_total", COUNTER, (),
        "Requests fast-failed with a busy error (503-style).",
    ),
    MetricSpec(
        "server.completed_total", COUNTER, (),
        "Queries answered successfully.",
    ),
    MetricSpec(
        "server.failed_total", COUNTER, (),
        "Queries answered with a query/internal error.",
    ),
    MetricSpec(
        "server.timed_out_total", COUNTER, (),
        "Queries answered with a deadline-expired error.",
    ),
    MetricSpec(
        "server.cancelled_total", COUNTER, (),
        "Queries answered with a cancelled error.",
    ),
    MetricSpec(
        "server.bad_requests_total", COUNTER, (),
        "Malformed frames or unknown ops.",
    ),
    MetricSpec(
        "server.query_seconds", HISTOGRAM, (),
        "Server-side latency of successfully answered queries.",
    ),
    MetricSpec(
        "server.result_cache_hits_total", COUNTER, (),
        "Query-result cache hits (statement not re-executed).",
    ),
    MetricSpec(
        "server.result_cache_misses_total", COUNTER, (),
        "Query-result cache misses.",
    ),
    MetricSpec(
        "server.result_cache_invalidations_total", COUNTER, (),
        "Whole-cache invalidations triggered by ingestion flushes.",
    ),
    MetricSpec(
        "server.columnar_responses_total", COUNTER, (),
        "Query responses encoded with the columnar wire format.",
    ),
)

#: name -> :class:`MetricSpec` for every declared metric.
CATALOG: dict[str, MetricSpec] = {spec.name: spec for spec in _SPECS}
