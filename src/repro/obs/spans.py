"""Lightweight hierarchical trace spans.

A :class:`SpanRecorder` opens a root span on the current thread; code
anywhere below it wraps stages in :func:`span` and attaches facts with
:func:`annotate`. When no recorder is active — the common case — the
instrumentation cost of :func:`span` is one thread-local read, so hot
paths stay hot. Recording is per-thread by design: a query executes on
one executor thread, so its span tree never needs cross-thread locks.

This is what powers ``EXPLAIN ANALYZE`` (see
:meth:`repro.query.engine.QueryEngine.explain_analyze`): the engine's
parse/plan/scan/finalize stages become one span each, carrying row and
segment counts in their metadata.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

_tls = threading.local()


class Span:
    """One timed stage: name, elapsed seconds, metadata, children."""

    __slots__ = ("name", "elapsed", "meta", "children")

    def __init__(self, name: str, meta: dict | None = None) -> None:
        self.name = name
        self.elapsed = 0.0
        self.meta: dict = dict(meta) if meta else {}
        self.children: list["Span"] = []

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Depth-first (depth, span) traversal including this span."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "elapsed_ms": self.elapsed * 1000.0,
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }


class SpanRecorder:
    """Context manager that captures a span tree on the current thread.

    Nesting recorders is allowed (the inner recorder shadows the outer
    for its duration), which lets a server-level trace and an
    ``EXPLAIN ANALYZE`` coexist.
    """

    def __init__(self, name: str = "root") -> None:
        self.root = Span(name)
        self._previous: list[Span] | None = None

    def __enter__(self) -> "SpanRecorder":
        self._previous = getattr(_tls, "stack", None)
        _tls.stack = [self.root]
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.root.elapsed = time.perf_counter() - self._started
        _tls.stack = self._previous


@contextmanager
def span(name: str, **meta: object) -> Iterator[Span | None]:
    """Open a child span under the active recorder, if any.

    Yields the :class:`Span` (mutate ``.meta`` freely) or ``None`` when
    no recorder is active — callers never need to branch; use
    :func:`annotate` for metadata so the inactive path stays free.
    """
    stack = getattr(_tls, "stack", None)
    if not stack:
        yield None
        return
    child = Span(name, meta)
    stack[-1].children.append(child)
    stack.append(child)
    started = time.perf_counter()
    try:
        yield child
    finally:
        child.elapsed = time.perf_counter() - started
        stack.pop()


def annotate(**meta: object) -> None:
    """Attach facts to the innermost active span (no-op otherwise)."""
    stack = getattr(_tls, "stack", None)
    if stack:
        stack[-1].meta.update(meta)


def current_span() -> Span | None:
    """The innermost active span, or ``None`` outside any recorder."""
    stack = getattr(_tls, "stack", None)
    return stack[-1] if stack else None
