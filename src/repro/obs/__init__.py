"""``repro.obs`` — the unified observability layer.

Every subsystem (ingestion, query engine, storage, cluster, server)
records into one process-wide :class:`MetricsRegistry`; hierarchical
:mod:`spans <repro.obs.spans>` capture per-query stage breakdowns (the
machinery behind ``EXPLAIN ANALYZE``); and
:func:`~repro.obs.profiling.maybe_profile` wraps the CLI hot paths in
cProfile when ``REPRO_PROFILE=1``.

Typical use::

    from repro.obs import get_registry

    registry = get_registry()
    registry.counter("ingest.points_total").inc(1024)
    registry.histogram("query.execute_seconds").record(0.004)
    print(registry.snapshot()["counters"])

Operators read the same registry remotely via the server's ``metrics``
op or ``python -m repro metrics`` (see ``docs/OPERATIONS.md``); the full
metric reference lives in ``docs/METRICS.md`` and is CI-verified against
:data:`~repro.obs.catalog.CATALOG`.
"""

from .catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM, MetricSpec
from .profiling import maybe_profile, profiling_enabled
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .spans import Span, SpanRecorder, annotate, current_span, span

__all__ = [
    "CATALOG",
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "annotate",
    "current_span",
    "get_registry",
    "maybe_profile",
    "profiling_enabled",
    "set_registry",
    "span",
]
