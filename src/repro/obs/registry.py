"""Process-wide metrics registry: counters, gauges and histograms.

One :class:`MetricsRegistry` instance (the module-level default returned
by :func:`get_registry`) holds every instrument in the process. All
mutation is lock-protected per instrument, so ingestion threads, the
server's executor pool and the asyncio event loop can all record without
coordination. Cross-*process* aggregation works by value: a worker ships
:meth:`MetricsRegistry.snapshot` over the RPC layer and the master folds
it in with :meth:`MetricsRegistry.merge_snapshot` — counters add,
histogram buckets add, gauges take the incoming value — so cluster-wide
totals compose exactly like the engine's partial aggregates.

Instrument names are validated against :mod:`repro.obs.catalog`; see
that module for the naming convention and the documentation-consistency
contract.
"""

from __future__ import annotations

import math
import threading

from .catalog import CATALOG, COUNTER, GAUGE, HISTOGRAM, MetricSpec

_FIRST_BOUND_SECONDS = 1e-4
_RATIO = 1.5
_N_BUCKETS = 48  # geometric buckets covering ~0.1 ms .. ~2.4e4 s


class Counter:
    """Monotonic float counter (integer-valued for event counts)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (e.g. a queue depth or an assignment size)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Latency histogram over seconds with fixed geometric buckets.

    Generalised out of the serving layer's original ``LatencyHistogram``
    (which is now a re-export of this class): ratio-1.5 buckets starting
    at 0.1 ms are O(1) per observation and put every p50/p95/p99
    estimate within one bucket ratio of the true quantile. Exact count,
    sum, min and max ride along. ``min`` reports 0.0 while empty —
    never ``inf`` — so snapshots are always JSON-clean.
    """

    def __init__(self) -> None:
        self._bounds = [
            _FIRST_BOUND_SECONDS * _RATIO**index
            for index in range(_N_BUCKETS)
        ]
        self._counts = [0] * (_N_BUCKETS + 1)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self.max = 0.0

    @property
    def min(self) -> float:
        """Smallest observation; 0.0 (not ``inf``) while empty."""
        return self._min if self.count else 0.0

    def _bucket(self, seconds: float) -> int:
        if seconds <= _FIRST_BOUND_SECONDS:
            return 0
        index = int(
            math.log(seconds / _FIRST_BOUND_SECONDS) / math.log(_RATIO)
        ) + 1
        return min(index, _N_BUCKETS)

    def record(self, seconds: float) -> None:
        with self._lock:
            self._counts[self._bucket(seconds)] += 1
            self.count += 1
            self.total += seconds
            self._min = min(self._min, seconds)
            self.max = max(self.max, seconds)

    def quantile(self, q: float) -> float:
        """Upper bucket bound holding the q-quantile (0 when empty)."""
        with self._lock:
            if not self.count:
                return 0.0
            target = q * self.count
            cumulative = 0
            for index, count in enumerate(self._counts):
                cumulative += count
                if cumulative >= target:
                    if index >= _N_BUCKETS:
                        return self.max
                    return min(self._bounds[index], self.max)
            return self.max

    def snapshot(self) -> dict:
        """Summary in milliseconds: count, mean, min/max and quantiles."""
        p50, p95, p99 = (
            self.quantile(0.50), self.quantile(0.95), self.quantile(0.99)
        )
        with self._lock:
            count, total = self.count, self.total
            low = self._min if count else 0.0
            high = self.max
        return {
            "count": count,
            "mean_ms": (total / count * 1000.0) if count else 0.0,
            "min_ms": low * 1000.0,
            "max_ms": high * 1000.0,
            "p50_ms": p50 * 1000.0,
            "p95_ms": p95 * 1000.0,
            "p99_ms": p99 * 1000.0,
        }

    def to_dict(self) -> dict:
        """Mergeable value form (exact counts plus raw buckets)."""
        summary = self.snapshot()
        with self._lock:
            summary["total_seconds"] = self.total
            summary["buckets"] = list(self._counts)
        return summary

    def merge_dict(self, payload: dict) -> None:
        """Fold another histogram's :meth:`to_dict` payload into this one."""
        buckets = payload.get("buckets")
        count = int(payload.get("count", 0))
        if not count or not buckets:
            return
        with self._lock:
            for index, bucket_count in enumerate(buckets[: len(self._counts)]):
                self._counts[index] += bucket_count
            self.count += count
            self.total += float(payload.get("total_seconds", 0.0))
            self._min = min(self._min, payload.get("min_ms", 0.0) / 1000.0)
            self.max = max(self.max, payload.get("max_ms", 0.0) / 1000.0)


_KIND_TYPES = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """All instruments of one process, keyed by (name, label values)."""

    def __init__(
        self, catalog: dict[str, MetricSpec] | None = None
    ) -> None:
        self._specs = dict(CATALOG if catalog is None else catalog)
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]],
                                object] = {}
        self._lock = threading.Lock()

    # -- declaration ---------------------------------------------------
    def declare(
        self,
        name: str,
        kind: str,
        labels: tuple[str, ...] = (),
        description: str = "",
    ) -> None:
        """Add a metric family beyond the built-in catalog (tests,
        user extensions). Re-declaring identically is a no-op."""
        spec = MetricSpec(name, kind, tuple(labels), description)
        with self._lock:
            existing = self._specs.get(name)
            if existing is not None and (
                existing.kind != spec.kind or existing.labels != spec.labels
            ):
                raise ValueError(
                    f"metric {name!r} already declared as {existing.kind}"
                    f"{existing.labels!r}"
                )
            self._specs[name] = spec

    @property
    def specs(self) -> dict[str, MetricSpec]:
        with self._lock:
            return dict(self._specs)

    # -- instrument accessors ------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        return self._instrument(name, COUNTER, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._instrument(name, GAUGE, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._instrument(name, HISTOGRAM, labels)

    def _instrument(self, name: str, kind: str, labels: dict):
        label_items = tuple(
            sorted((key, str(value)) for key, value in labels.items())
        )
        key = (name, label_items)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is not None:
                return instrument
            spec = self._specs.get(name)
            if spec is None:
                raise KeyError(
                    f"metric {name!r} is not declared in the catalog; add "
                    "it to repro/obs/catalog.py (and docs/METRICS.md) or "
                    "declare() it explicitly"
                )
            if spec.kind != kind:
                raise TypeError(
                    f"metric {name!r} is declared as a {spec.kind}, "
                    f"not a {kind}"
                )
            if tuple(sorted(spec.labels)) != tuple(k for k, _ in label_items):
                raise ValueError(
                    f"metric {name!r} requires labels {spec.labels!r}, "
                    f"got {tuple(labels)!r}"
                )
            instrument = _KIND_TYPES[kind]()
            self._instruments[key] = instrument
            return instrument

    # -- snapshots ------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-clean value dump, grouped by instrument kind.

        Keys are rendered as ``name`` or ``name{label=value,...}``.
        Only instruments that were actually touched appear — an idle
        process reports an empty registry, not a wall of zeroes.
        """
        with self._lock:
            items = list(self._instruments.items())
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for (name, label_items), instrument in items:
            rendered = _render(name, label_items)
            if isinstance(instrument, Counter):
                value = instrument.value
                counters[rendered] = (
                    int(value) if float(value).is_integer() else value
                )
            elif isinstance(instrument, Gauge):
                gauges[rendered] = instrument.value
            else:
                histograms[rendered] = instrument.to_dict()
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another process's :meth:`snapshot` into this registry.

        Counters and histograms add (the associative merge the cluster's
        partial aggregates already rely on); gauges take the incoming
        value. Metrics unknown to this registry's catalog are declared
        on the fly so a master can absorb a worker built from a newer
        catalog.
        """
        for rendered, value in snapshot.get("counters", {}).items():
            name, labels = _parse(rendered)
            self._ensure_declared(name, COUNTER, labels)
            self.counter(name, **labels).inc(value)
        for rendered, value in snapshot.get("gauges", {}).items():
            name, labels = _parse(rendered)
            self._ensure_declared(name, GAUGE, labels)
            self.gauge(name, **labels).set(value)
        for rendered, payload in snapshot.get("histograms", {}).items():
            name, labels = _parse(rendered)
            self._ensure_declared(name, HISTOGRAM, labels)
            self.histogram(name, **labels).merge_dict(payload)

    def _ensure_declared(self, name: str, kind: str, labels: dict) -> None:
        with self._lock:
            if name not in self._specs:
                self._specs[name] = MetricSpec(
                    name, kind, tuple(sorted(labels)), "(merged)"
                )

    def reset(self) -> None:
        """Drop every instrument (tests; the catalog stays)."""
        with self._lock:
            self._instruments.clear()


def _render(name: str, label_items: tuple[tuple[str, str], ...]) -> str:
    if not label_items:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in label_items)
    return f"{name}{{{rendered}}}"


def _parse(rendered: str) -> tuple[str, dict[str, str]]:
    if not rendered.endswith("}") or "{" not in rendered:
        return rendered, {}
    name, _, raw = rendered[:-1].partition("{")
    labels = {}
    for pair in raw.split(","):
        key, _, value = pair.partition("=")
        labels[key] = value
    return name, labels


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry every layer records into."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (tests); returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
