"""repro — a Python reproduction of ModelarDB (ICDE 2021).

Model-based management of correlated dimensional time series:
Multi-Model Group Compression (MMGC), metadata-only partitioning of
correlated series, and multi-dimensional aggregate queries executed
directly on models. See DESIGN.md for the system inventory and
EXPERIMENTS.md for the reproduced evaluation.
"""

from .core.config import Configuration
from .core.dimensions import Dimension, DimensionSet, build_dimension
from .core.errors import ModelarError
from .core.group import TimeSeriesGroup, singleton_groups
from .core.segment import SegmentGroup
from .core.timeseries import DataPoint, TimeSeries, from_data_points
from .modelardb import ModelarDB
from .models.base import ModelType
from .models.registry import ModelRegistry
from .storage.filestore import FileStorage
from .storage.interface import Storage
from .storage.memory import MemoryStorage
from .storage.scan import SegmentScan

__version__ = "2.0.0"

__all__ = [
    "Configuration",
    "Dimension",
    "DimensionSet",
    "build_dimension",
    "ModelarError",
    "TimeSeriesGroup",
    "singleton_groups",
    "SegmentGroup",
    "DataPoint",
    "TimeSeries",
    "from_data_points",
    "ModelarDB",
    "ModelType",
    "ModelRegistry",
    "Storage",
    "FileStorage",
    "MemoryStorage",
    "SegmentScan",
    "__version__",
]
