"""ModelarDB v1/v2 behind the benchmark's :class:`StorageFormat` interface.

``ModelarV2Format`` is the paper's system; ``ModelarV1Format`` runs the
identical engine without group compression (each series its own group),
which is exactly how the paper positions v1 as the state-of-the-art
model-based baseline. Both can answer queries through the Segment View
(aggregates on models) or the Data Point View (reconstruction), matching
the SV-6 / DPV-6 bars of the evaluation figures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.config import Configuration
from ..core.dimensions import DimensionSet
from ..core.timeseries import TimeSeries
from ..modelardb import ModelarDB
from .base import StorageFormat


class ModelarFormat(StorageFormat):
    """Common adapter over a :class:`~repro.modelardb.ModelarDB` instance."""

    supports_online_analytics = True
    supports_distribution = True
    supports_calendar_rollup = True
    supports_error_bounds = True

    def __init__(
        self,
        config: Configuration | None = None,
        view: str = "segment",
        group_compression: bool = True,
    ) -> None:
        super().__init__()
        self._config = config if config is not None else Configuration()
        self._view = view
        self._group_compression = group_compression
        self._db: ModelarDB | None = None

    # ------------------------------------------------------------------
    def ingest(
        self,
        series: Sequence[TimeSeries],
        dimensions: DimensionSet | None = None,
    ) -> None:
        self._dimensions = dimensions
        for ts in series:
            self._tids.append(ts.tid)
            if dimensions is not None:
                self._dimension_rows[ts.tid] = dimensions.row(ts.tid)
        self._db = ModelarDB(
            self._config,
            dimensions=dimensions,
            group_compression=self._group_compression,
        )
        self._db.ingest(list(series))

    def _ingest_series(self, ts, dimensions):  # pragma: no cover
        raise NotImplementedError("ModelarFormat overrides ingest() directly")

    @property
    def db(self) -> ModelarDB:
        if self._db is None:
            raise RuntimeError("ingest() must run before queries")
        return self._db

    def size_bytes(self) -> int:
        return self.db.size_bytes()

    # ------------------------------------------------------------------
    # Queries mapped onto the engine
    # ------------------------------------------------------------------
    def simple_aggregate(
        self,
        function: str,
        tids: Sequence[int] | None = None,
        group_by_tid: bool = False,
        start: int | None = None,
        end: int | None = None,
    ) -> list[dict]:
        rows = self.db.aggregate(
            self._function_name(function),
            tids=tids,
            start_time=start,
            end_time=end,
            group_by=("Tid",) if group_by_tid else (),
            view=self._view,
        )
        return [self._rename(row, function) for row in rows]

    def point_query(self, tid: int, timestamp: int) -> float | None:
        for point in self.db.points(
            tids=[tid], start_time=timestamp, end_time=timestamp
        ):
            return point.value
        return None

    def range_query(
        self, tid: int, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        points = list(
            self.db.points(tids=[tid], start_time=start, end_time=end)
        )
        timestamps = np.array(
            [point.timestamp for point in points], dtype=np.int64
        )
        values = np.array([point.value for point in points])
        return timestamps, values

    def rollup(
        self,
        function: str,
        level: str,
        member: tuple[str, str] | None = None,
        group_by: str | None = None,
        per_tid: bool = False,
        tids: Sequence[int] | None = None,
    ) -> list[dict]:
        cube = f"CUBE_{function.upper()}_{level.upper()}"
        group_columns: list[str] = []
        if group_by is not None:
            group_columns.append(group_by)
        if per_tid:
            group_columns.append("Tid")
        rows = self.db.aggregate(
            cube,
            tids=tids,
            members=[member] if member is not None else (),
            group_by=tuple(group_columns),
            view=self._view,
        )
        label = f"{cube}(*)"
        renamed = []
        for row in rows:
            shaped = dict(row)
            if label in shaped:
                shaped[function.upper()] = shaped.pop(label)
            renamed.append(shaped)
        return renamed

    # ------------------------------------------------------------------
    def _function_name(self, function: str) -> str:
        # The Segment View uses the _S-suffixed functions of Section 6.1;
        # the Data Point View uses plain aggregates.
        if self._view == "segment":
            return f"{function.upper()}_S"
        return function.upper()

    def _rename(self, row: dict, function: str) -> dict:
        label = f"{self._function_name(function)}(*)"
        shaped = dict(row)
        if label in shaped:
            shaped[function.upper()] = shaped.pop(label)
        return shaped

    def _read_series(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        points = list(self.db.points(tids=[tid]))
        return (
            np.array([point.timestamp for point in points], dtype=np.int64),
            np.array([point.value for point in points]),
        )


class ModelarV2Format(ModelarFormat):
    """The paper's system: MMGC with partitioning."""

    def __init__(
        self, config: Configuration | None = None, view: str = "segment"
    ) -> None:
        super().__init__(config, view=view, group_compression=True)
        self.name = f"ModelarDBv2-{'SV' if view == 'segment' else 'DPV'}"


class ModelarV1Format(ModelarFormat):
    """Multi-model compression without group compression (the v1 baseline)."""

    def __init__(
        self, config: Configuration | None = None, view: str = "segment"
    ) -> None:
        super().__init__(config, view=view, group_compression=False)
        self.name = f"ModelarDBv1-{'SV' if view == 'segment' else 'DPV'}"
