"""Parquet-as-a-file-format (Section 7.1's Parquet baseline).

Reproduces the columnar layout the paper uses: one file per time series
(stored under ``Tid=n`` folders so the engine can prune by Tid without
opening files), row groups with independently compressed column chunks,
dictionary/RLE encoding for the constant dimension columns, and column
pruning — an aggregate over ``Value`` decompresses only the value chunks.
Files are immutable: the format cannot be queried while being written
(``supports_online_analytics = False``), which is Parquet's qualitative
downside in Figs. 13 and 19.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..core.timeseries import TimeSeries
from .base import StorageFormat

_ROW_GROUP = 50_000
_FOOTER_BYTES = 256  # file metadata footer
_COMPRESSION_LEVEL = 6


class _RowGroup:
    """One row group: compressed timestamp and value chunks."""

    def __init__(self, timestamps: np.ndarray, values: np.ndarray) -> None:
        deltas = np.diff(timestamps, prepend=timestamps[0])
        self.first = int(timestamps[0])
        self.last = int(timestamps[-1])
        self.count = len(timestamps)
        self.ts_chunk = zlib.compress(
            deltas.astype(np.int32).tobytes(), _COMPRESSION_LEVEL
        )
        self.value_chunk = zlib.compress(
            values.astype(np.float32).tobytes(), _COMPRESSION_LEVEL
        )

    def timestamps(self) -> np.ndarray:
        deltas = np.frombuffer(zlib.decompress(self.ts_chunk), dtype=np.int32)
        timestamps = np.cumsum(deltas.astype(np.int64))
        return timestamps + (self.first - timestamps[0])

    def values(self) -> np.ndarray:
        return np.frombuffer(
            zlib.decompress(self.value_chunk), dtype=np.float32
        ).astype(np.float64)

    def size_bytes(self) -> int:
        return len(self.ts_chunk) + len(self.value_chunk) + 64  # chunk metadata


class ParquetLike(StorageFormat):
    """Columnar per-series files with row groups and column pruning."""

    name = "Parquet"
    supports_online_analytics = False
    supports_distribution = True
    supports_calendar_rollup = True

    row_group_size = _ROW_GROUP

    def __init__(self) -> None:
        super().__init__()
        self._files: dict[int, list[_RowGroup]] = {}
        self._dimension_bytes: dict[int, int] = {}

    def _ingest_series(self, ts: TimeSeries, dimensions: dict[str, str]) -> None:
        # The per-point write path builds one output row (with the
        # denormalised dimensions appended, as the paper configures the
        # existing formats) and feeds the column builders; encoding
        # happens per row group, as a Parquet writer does.
        dimension_values = tuple(dimensions.values())
        ts_builder: list[int] = []
        value_builder: list[float] = []
        groups: list[_RowGroup] = []
        for point in ts:
            if point.value is None:
                continue
            row = (point.tid, point.timestamp, point.value, *dimension_values)
            ts_builder.append(row[1])
            value_builder.append(row[2])
            if len(ts_builder) >= self.row_group_size:
                groups.append(
                    _RowGroup(
                        np.asarray(ts_builder, dtype=np.int64),
                        np.asarray(value_builder, dtype=np.float64),
                    )
                )
                ts_builder = []
                value_builder = []
        if ts_builder:
            groups.append(
                _RowGroup(
                    np.asarray(ts_builder, dtype=np.int64),
                    np.asarray(value_builder, dtype=np.float64),
                )
            )
        self._files[ts.tid] = groups
        # Dimension columns are constant per file: dictionary page with
        # one entry per column plus an RLE run per row group.
        self._dimension_bytes[ts.tid] = sum(
            len(value) + 8 for value in dimensions.values()
        ) + 4 * len(groups)

    def size_bytes(self) -> int:
        total = 0
        for tid, groups in self._files.items():
            total += sum(group.size_bytes() for group in groups)
            total += self._dimension_bytes.get(tid, 0) + _FOOTER_BYTES
        return total

    def _read_series(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        groups = self._files.get(tid, ())
        if not groups:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return (
            np.concatenate([group.timestamps() for group in groups]),
            np.concatenate([group.values() for group in groups]),
        )

    def _read_values(self, tid: int) -> np.ndarray:
        """Column pruning: only the value chunks are decompressed."""
        groups = self._files.get(tid, ())
        if not groups:
            return np.empty(0)
        return np.concatenate([group.values() for group in groups])

    def _read_series_range(
        self, tid: int, start: int | None, end: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        # Row-group statistics let readers skip groups outside the range.
        timestamps = []
        values = []
        for group in self._files.get(tid, ()):
            if start is not None and group.last < start:
                continue
            if end is not None and group.first > end:
                continue
            timestamps.append(group.timestamps())
            values.append(group.values())
        if not timestamps:
            return np.empty(0, dtype=np.int64), np.empty(0)
        all_ts = np.concatenate(timestamps)
        all_vals = np.concatenate(values)
        mask = np.ones(len(all_ts), dtype=bool)
        if start is not None:
            mask &= all_ts >= start
        if end is not None:
            mask &= all_ts <= end
        return all_ts[mask], all_vals[mask]
