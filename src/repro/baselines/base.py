"""The common interface of the evaluation's storage formats (Section 7.1).

Every system the paper compares against — InfluxDB, Cassandra, Parquet,
ORC, ModelarDB v1 — is reproduced behind :class:`StorageFormat` so the
benchmark harness can run identical workloads over all of them. Data
points are stored with the Data Point View's schema ``(Tid int, TS
timestamp, Value float, Dimensions)`` exactly as the paper configures the
existing formats.

Capability flags reproduce the qualitative outcomes of the evaluation:
``supports_calendar_rollup = False`` makes M-AGG raise
:class:`~repro.core.errors.UnsupportedQueryError` (InfluxDB, Figs. 25-28)
and ``supports_distribution = False`` marks the formats that cannot
scale out (InfluxDB's open-source version, Fig. 19).

Shared query execution lives here: formats expose how series are *read
back from their encoded form* (``_read_series``); aggregates, point,
range and rollup queries are computed from that with numpy, so query
speed differences between formats reflect their storage layouts (row vs
column, what must be decompressed, what can be pruned) rather than
incidental Python differences.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from ..core.dimensions import DimensionSet
from ..core.errors import UnsupportedQueryError
from ..core.timeseries import TimeSeries

_LEVEL_UNIT = {
    "MINUTE": "m",
    "HOUR": "h",
    "DAY": "D",
    "MONTH": "M",
    "YEAR": "Y",
}

_REDUCTIONS = {
    "COUNT": len,
    "SUM": np.sum,
    "MIN": np.min,
    "MAX": np.max,
    "AVG": np.mean,
}


class StorageFormat(ABC):
    """One system under evaluation."""

    name: str = ""
    supports_online_analytics: bool = True
    supports_distribution: bool = True
    supports_calendar_rollup: bool = True
    supports_error_bounds: bool = False

    def __init__(self) -> None:
        self._dimensions: DimensionSet | None = None
        self._dimension_rows: dict[int, dict[str, str]] = {}
        self._tids: list[int] = []

    # ------------------------------------------------------------------
    # Lifecycle (the same open/flush/close contract as repro.storage)
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: str | None = None) -> "StorageFormat":
        """Open a format instance; path-less formats ignore ``path``."""
        return cls() if path is None else cls(path)

    def flush(self) -> None:
        """Make pending writes durable; default defers to the ingest-time
        :meth:`_finish_ingest` hook, so explicit flushes are no-ops."""

    def close(self) -> None:
        """Release resources; default is a no-op."""

    def __enter__(self) -> "StorageFormat":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        series: Sequence[TimeSeries],
        dimensions: DimensionSet | None = None,
    ) -> None:
        """Ingest time series with their denormalised dimensions."""
        self._dimensions = dimensions
        for ts in series:
            row = dimensions.row(ts.tid) if dimensions is not None else {}
            self._dimension_rows[ts.tid] = row
            self._tids.append(ts.tid)
            self._ingest_series(ts, row)
        self._finish_ingest()

    @abstractmethod
    def _ingest_series(self, ts: TimeSeries, dimensions: dict[str, str]) -> None:
        """Format-specific write path for one series."""

    def _finish_ingest(self) -> None:
        """Hook for final flushes (files, compactions); default no-op."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Bytes used by the encoded representation."""

    # ------------------------------------------------------------------
    # Reading back (format-specific)
    # ------------------------------------------------------------------
    @abstractmethod
    def _read_series(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        """Decode one series: (int64 timestamps, float64 values).

        Gap points are not materialised (only stored data points return).
        """

    def _read_series_range(
        self, tid: int, start: int | None, end: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Decode one series restricted to [start, end].

        The default decodes everything and masks; formats with indexes
        (ORC stripes, Influx shards) override this to skip blocks.
        """
        timestamps, values = self._read_series(tid)
        return _mask_range(timestamps, values, start, end)

    def _read_values(self, tid: int) -> np.ndarray:
        """Decode only the value column of one series.

        Columnar formats (Parquet, ORC) override this to prune the
        timestamp column when an aggregate touches only ``Value``.
        """
        return self._read_series(tid)[1]

    # ------------------------------------------------------------------
    # Queries (shared execution over the format's read paths)
    # ------------------------------------------------------------------
    def simple_aggregate(
        self,
        function: str,
        tids: Sequence[int] | None = None,
        group_by_tid: bool = False,
        start: int | None = None,
        end: int | None = None,
    ) -> list[dict]:
        """S-AGG/L-AGG style aggregates, optionally grouped by Tid."""
        reduce = _reduction(function)
        targets = list(tids) if tids is not None else list(self._tids)
        unbounded = start is None and end is None

        def read(tid: int) -> np.ndarray:
            if unbounded:
                return self._read_values(tid)
            return self._read_series_range(tid, start, end)[1]

        if group_by_tid:
            rows = []
            for tid in targets:
                values = read(tid)
                if len(values):
                    rows.append({"Tid": tid, function: float(reduce(values))})
            return rows
        chunks = []
        for tid in targets:
            values = read(tid)
            if len(values):
                chunks.append(values)
        if not chunks:
            return []
        if function.upper() == "AVG":
            total = sum(float(chunk.sum()) for chunk in chunks)
            count = sum(len(chunk) for chunk in chunks)
            return [{function: total / count}]
        partials = np.array([float(reduce(chunk)) for chunk in chunks])
        outer = {"COUNT": np.sum, "SUM": np.sum, "MIN": np.min, "MAX": np.max}
        return [{function: float(outer[function.upper()](partials))}]

    def point_query(self, tid: int, timestamp: int) -> float | None:
        """P/R point lookup: the value of one series at one timestamp."""
        timestamps, values = self._read_series_range(tid, timestamp, timestamp)
        if len(values) == 0:
            return None
        return float(values[0])

    def range_query(
        self, tid: int, start: int, end: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """P/R range extraction: (timestamps, values) of a sub-sequence."""
        return self._read_series_range(tid, start, end)

    def rollup(
        self,
        function: str,
        level: str,
        member: tuple[str, str] | None = None,
        group_by: str | None = None,
        per_tid: bool = False,
        tids: Sequence[int] | None = None,
    ) -> list[dict]:
        """M-AGG style multi-dimensional aggregate in the time dimension.

        ``member`` filters series by a dimension column value; ``group_by``
        adds a dimension column to the grouping; ``per_tid`` additionally
        groups by Tid; buckets follow the calendar ``level``.
        """
        if not self.supports_calendar_rollup:
            raise UnsupportedQueryError(
                f"{self.name} cannot aggregate calendar intervals "
                "(fixed-duration windows only)"
            )
        reduce_name = function.upper()
        targets = list(tids) if tids is not None else list(self._tids)
        if member is not None:
            column, value = member
            targets = [
                tid
                for tid in targets
                if self._dimension_rows.get(tid, {}).get(column) == value
            ]
        from ..query.rollup import DATEPART_LEVELS, datepart_of

        part_level = DATEPART_LEVELS.get(level.upper())
        walk_level = part_level if part_level else level
        states: dict[tuple, tuple[float, float, int]] = {}
        for tid in targets:
            timestamps, values = self._read_series(tid)
            if len(values) == 0:
                continue
            buckets = _calendar_buckets(timestamps, walk_level)
            unique, inverse = np.unique(buckets, return_inverse=True)
            key_base: tuple = ()
            if group_by is not None:
                key_base += (self._dimension_rows.get(tid, {}).get(group_by),)
            if per_tid:
                key_base += (tid,)
            for position, bucket in enumerate(unique):
                slice_values = values[inverse == position]
                bucket_key = (
                    int(bucket)
                    if part_level is None
                    else datepart_of(int(bucket), level.upper())
                )
                key = key_base + (bucket_key,)
                _fold_bucket(states, key, slice_values)
        return _format_rollup(states, reduce_name, level, group_by, per_tid)

    # ------------------------------------------------------------------
    def tids(self) -> list[int]:
        return list(self._tids)


# ----------------------------------------------------------------------
# Helpers shared by the formats
# ----------------------------------------------------------------------
def _reduction(function: str):
    try:
        return _REDUCTIONS[function.upper()]
    except KeyError:
        raise UnsupportedQueryError(
            f"unknown aggregate function {function!r}"
        ) from None


def _mask_range(
    timestamps: np.ndarray,
    values: np.ndarray,
    start: int | None,
    end: int | None,
) -> tuple[np.ndarray, np.ndarray]:
    if start is None and end is None:
        return timestamps, values
    mask = np.ones(len(timestamps), dtype=bool)
    if start is not None:
        mask &= timestamps >= start
    if end is not None:
        mask &= timestamps <= end
    return timestamps[mask], values[mask]


def _calendar_buckets(timestamps: np.ndarray, level: str) -> np.ndarray:
    unit = _LEVEL_UNIT.get(level.upper())
    if unit is None:
        raise UnsupportedQueryError(f"unknown time level {level!r}")
    moments = timestamps.astype("datetime64[ms]")
    return (
        moments.astype(f"datetime64[{unit}]")
        .astype("datetime64[ms]")
        .astype(np.int64)
    )


def _fold_bucket(
    states: dict[tuple, tuple[float, float, float, int]],
    key: tuple,
    values: np.ndarray,
) -> None:
    total = float(values.sum())
    low = float(values.min())
    high = float(values.max())
    count = len(values)
    existing = states.get(key)
    if existing is None:
        states[key] = (total, low, high, count)
    else:
        states[key] = (
            existing[0] + total,
            min(existing[1], low),
            max(existing[2], high),
            existing[3] + count,
        )


def _format_rollup(
    states: dict,
    function: str,
    level: str,
    group_by: str | None,
    per_tid: bool,
) -> list[dict]:
    from ..query.rollup import format_bucket

    rows = []
    for key in sorted(states, key=lambda k: tuple(map(str, k))):
        total, low, high, count = states[key]
        if function == "SUM":
            value = total
        elif function == "MIN":
            value = low
        elif function == "MAX":
            value = high
        elif function == "COUNT":
            value = count
        else:  # AVG
            value = total / count
        row: dict = {}
        parts = list(key)
        if group_by is not None:
            row[group_by] = parts.pop(0)
        if per_tid:
            row["Tid"] = parts.pop(0)
        row[level.upper()] = format_bucket(parts.pop(0), level.upper())
        row[function] = value
        rows.append(row)
    return rows
