"""Cassandra-as-a-storage-format (Section 7.1's Cassandra baseline).

Reproduces how the paper stores data points in Cassandra: one row per
data point with primary key ``(Tid, TS, Value)`` and the denormalised
dimensions appended to every row. The consequences the evaluation
depends on:

* *enormous storage* — every row repeats the dimension members and pays
  per-cell metadata overhead (Fig. 14's 129 GiB for EP);
* *slow ingestion* — a mutation is built and encoded per data point;
* *mediocre scans* — queries decompress and decode whole rows (all
  columns), not just the queried value column.

Rows are fixed-width records (16 B key/value + per-row cell overhead +
a fixed-width dimension blob), accumulated per partition (Tid) in a
memtable and flushed to zlib-compressed SSTable blocks.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.timeseries import TimeSeries
from .base import StorageFormat

#: Approximate Cassandra per-cell metadata overhead per row.
_ROW_OVERHEAD_BYTES = 8
_BLOCK_ROWS = 4096
_KEY_FORMAT = "<Iqf"


class CassandraLike(StorageFormat):
    """Row-per-data-point store with denormalised dimensions."""

    name = "Cassandra"
    supports_online_analytics = True
    supports_distribution = True
    supports_calendar_rollup = True

    def __init__(self) -> None:
        super().__init__()
        self._blocks: dict[int, list[bytes]] = {}
        self._row_width: dict[int, int] = {}
        self._dimension_width: dict[int, int] = {}

    def _ingest_series(self, ts: TimeSeries, dimensions: dict[str, str]) -> None:
        dimension_blob = "|".join(dimensions.values()).encode("utf-8")
        width = len(dimension_blob)
        memtable = bytearray()
        blocks: list[bytes] = []
        rows_in_block = 0
        overhead = b"\x00" * _ROW_OVERHEAD_BYTES
        for point in ts:
            if point.value is None:
                continue
            # The per-point write path: build and encode one mutation.
            row = (
                struct.pack(_KEY_FORMAT, point.tid, point.timestamp, point.value)
                + overhead
                + dimension_blob
            )
            memtable += row
            rows_in_block += 1
            if rows_in_block >= _BLOCK_ROWS:
                blocks.append(zlib.compress(bytes(memtable), 6))
                memtable = bytearray()
                rows_in_block = 0
        if memtable:
            blocks.append(zlib.compress(bytes(memtable), 6))
        self._blocks[ts.tid] = blocks
        self._dimension_width[ts.tid] = width
        self._row_width[ts.tid] = (
            struct.calcsize(_KEY_FORMAT) + _ROW_OVERHEAD_BYTES + width
        )

    def size_bytes(self) -> int:
        return sum(
            len(block) for blocks in self._blocks.values() for block in blocks
        )

    def _read_series(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        width = self._row_width[tid]
        dtype = np.dtype(
            [
                ("tid", "<u4"),
                ("ts", "<i8"),
                ("value", "<f4"),
                ("overhead", f"V{_ROW_OVERHEAD_BYTES}"),
                ("dims", f"V{self._dimension_width[tid]}"),
            ]
        )
        assert dtype.itemsize == width
        timestamps = []
        values = []
        for block in self._blocks.get(tid, ()):
            rows = np.frombuffer(zlib.decompress(block), dtype=dtype)
            timestamps.append(rows["ts"].astype(np.int64))
            values.append(rows["value"].astype(np.float64))
        if not timestamps:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return np.concatenate(timestamps), np.concatenate(values)
