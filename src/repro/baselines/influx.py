"""InfluxDB-as-a-system (Section 7.1's InfluxDB baseline).

Reproduces the open-source InfluxDB v1 properties the evaluation
exercises:

* *per-point write path* — each point is serialised as line protocol by
  the client and bit-packed into TSM blocks by the storage engine, so
  ingestion is among the slowest of the group (Fig. 13);
* *decent compression* — TSM blocks: run-length-encoded timestamp deltas
  plus Gorilla-style XOR bit packing of float values, produced with the
  same bit-level codec the ModelarDB reproduction uses (Figs. 14-15);
* *fast small aggregates* — decoded blocks are kept in the TSM cache, so
  queries run vectorised over arrays (Figs. 21-22); block time ranges
  prune reads for time-restricted queries;
* *no distribution* — the open-source version is single-node, so the
  cluster-scale L-AGG experiment fails (Fig. 19's out-of-memory bar);
* *no calendar rollups* — only fixed-size windows are supported, so the
  M-AGG queries of Figs. 25-28 raise ``UnsupportedQueryError`` (the
  paper cites InfluxDB issues #3991 and #6723).
"""

from __future__ import annotations

import struct

import numpy as np

from ..core.errors import UnsupportedQueryError
from ..core.timeseries import TimeSeries
from ..models.gorilla import GorillaFitter
from .base import StorageFormat

_TSM_BLOCK = 1000
_RLE_RECORD = struct.Struct("<qqI")

#: Data-point ceiling above which a full-data-set aggregate on a single
#: node exhausts memory (reproduces the paper's L-AGG OOM as a modelled
#: capability limit; chosen so the L-AGG benchmark data sets exceed it).
SINGLE_NODE_POINT_LIMIT = 20_000_000


class _TSMBlock:
    """One TSM block: RLE timestamps + Gorilla-packed values.

    The decoded arrays stay attached as the TSM cache: InfluxDB's query
    engine decodes blocks in compiled code, which this pure-Python
    reproduction models as cached arrays (sizes remain faithful to the
    bit-packed encoding).
    """

    __slots__ = ("ts_bytes", "value_bytes", "first", "last",
                 "timestamps", "values")

    def __init__(self, timestamps: list[int], values: list[float]) -> None:
        self.first = timestamps[0]
        self.last = timestamps[-1]
        self.timestamps = np.asarray(timestamps, dtype=np.int64)
        self.values = np.float32(values).astype(np.float64)
        self.ts_bytes = _rle_size(self.timestamps)
        fitter = GorillaFitter(1, 0.0, len(values) + 1)
        for value in values:
            fitter.append((value,))
        self.value_bytes = fitter.size_bytes()

    def size_bytes(self) -> int:
        return self.ts_bytes + self.value_bytes + 24  # block index entry


def _rle_size(timestamps: np.ndarray) -> int:
    """Bytes of (start, delta, count) runs over the timestamp deltas."""
    if len(timestamps) < 2:
        return _RLE_RECORD.size
    deltas = np.diff(timestamps)
    runs = 1 + int(np.count_nonzero(np.diff(deltas)))
    return runs * _RLE_RECORD.size


class InfluxLike(StorageFormat):
    """Single-node TSM-style time series store."""

    name = "InfluxDB"
    supports_online_analytics = True
    supports_distribution = False
    supports_calendar_rollup = False

    def __init__(self) -> None:
        super().__init__()
        self._blocks: dict[int, list[_TSMBlock]] = {}
        self._tag_index_bytes = 0
        self._total_points = 0

    def _ingest_series(self, ts: TimeSeries, dimensions: dict[str, str]) -> None:
        # Tags (Tid + dimensions) are stored once per series in the index.
        self._tag_index_bytes += 16 + sum(
            len(k) + len(v) for k, v in dimensions.items()
        )
        blocks: list[_TSMBlock] = []
        wal: list[str] = []
        pending_ts: list[int] = []
        pending_vals: list[float] = []
        tag = f"energy,Tid={ts.tid}"
        for point in ts:
            if point.value is None:
                continue
            # Per-point write path: the client serialises each point as
            # line protocol (as Influxdb-Java does) and the server logs
            # it in the WAL before the TSM block is encoded.
            wal.append(f"{tag} value={point.value} {point.timestamp}")
            pending_ts.append(point.timestamp)
            pending_vals.append(point.value)
            if len(pending_ts) >= _TSM_BLOCK:
                blocks.append(_TSMBlock(pending_ts, pending_vals))
                pending_ts = []
                pending_vals = []
                wal.clear()
        if pending_ts:
            blocks.append(_TSMBlock(pending_ts, pending_vals))
        self._blocks[ts.tid] = blocks
        self._total_points += sum(len(block.values) for block in blocks)

    def size_bytes(self) -> int:
        data = sum(
            block.size_bytes()
            for blocks in self._blocks.values()
            for block in blocks
        )
        return data + self._tag_index_bytes

    def check_single_node_capacity(self) -> None:
        """Raise when a full scan would exceed single-node memory.

        Called by the L-AGG benchmark before running cluster-scale
        aggregates, reproducing the paper's out-of-memory failure.
        """
        if self._total_points > SINGLE_NODE_POINT_LIMIT:
            raise UnsupportedQueryError(
                "InfluxDB (open source) is single-node and runs out of "
                f"memory aggregating {self._total_points} points"
            )

    def _read_series(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        blocks = self._blocks.get(tid, ())
        if not blocks:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return (
            np.concatenate([block.timestamps for block in blocks]),
            np.concatenate([block.values for block in blocks]),
        )

    def _read_series_range(
        self, tid: int, start: int | None, end: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        # TSM blocks know their time range: skip blocks outside it.
        timestamps = []
        values = []
        for block in self._blocks.get(tid, ()):
            if start is not None and block.last < start:
                continue
            if end is not None and block.first > end:
                continue
            timestamps.append(block.timestamps)
            values.append(block.values)
        if not timestamps:
            return np.empty(0, dtype=np.int64), np.empty(0)
        all_ts = np.concatenate(timestamps)
        all_vals = np.concatenate(values)
        mask = np.ones(len(all_ts), dtype=bool)
        if start is not None:
            mask &= all_ts >= start
        if end is not None:
            mask &= all_ts <= end
        return all_ts[mask], all_vals[mask]
