"""Reproductions of the evaluation's comparison systems (Section 7.1)."""

from .base import StorageFormat
from .cassandra import CassandraLike
from .influx import InfluxLike
from .modelardb_adapter import ModelarFormat, ModelarV1Format, ModelarV2Format
from .orc import ORCLike
from .parquet import ParquetLike

__all__ = [
    "StorageFormat",
    "CassandraLike",
    "InfluxLike",
    "ModelarFormat",
    "ModelarV1Format",
    "ModelarV2Format",
    "ORCLike",
    "ParquetLike",
]
