"""ORC-as-a-file-format (Section 7.1's ORC baseline).

Like the Parquet reproduction, one immutable file per series — but with
ORC's characteristic layout: stripes with lightweight per-stripe indexes
(min/max timestamp and value) that let predicate push-down skip whole
stripes, run-length encoding of the (mostly constant) timestamp deltas,
and a higher default compression effort. The qualitative consequences:
slightly better compression and slightly slower ingestion than Parquet,
and effective stripe pruning for time-restricted queries.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from ..core.timeseries import TimeSeries
from .base import StorageFormat

_STRIPE_ROWS = 10_000
_FOOTER_BYTES = 256
_COMPRESSION_LEVEL = 9


class _Stripe:
    """One ORC stripe: RLE timestamps, compressed values, index entry."""

    def __init__(self, timestamps: np.ndarray, values: np.ndarray) -> None:
        self.first = int(timestamps[0])
        self.last = int(timestamps[-1])
        self.count = len(timestamps)
        self.min_value = float(values.min())
        self.max_value = float(values.max())
        self.ts_stream = _rle_encode(timestamps)
        self.value_stream = zlib.compress(
            values.astype(np.float32).tobytes(), _COMPRESSION_LEVEL
        )

    def timestamps(self) -> np.ndarray:
        return _rle_decode(self.ts_stream)

    def values(self) -> np.ndarray:
        return np.frombuffer(
            zlib.decompress(self.value_stream), dtype=np.float32
        ).astype(np.float64)

    def size_bytes(self) -> int:
        # streams + index entry (min/max ts, min/max value, count)
        return len(self.ts_stream) + len(self.value_stream) + 40


def _rle_encode(timestamps: np.ndarray) -> bytes:
    """Run-length encode timestamps as (start, delta, count) runs."""
    if len(timestamps) == 1:
        return struct.pack("<qqI", int(timestamps[0]), 0, 1)
    deltas = np.diff(timestamps)
    change_points = np.flatnonzero(np.diff(deltas) != 0) + 1
    starts = np.concatenate(([0], change_points))
    ends = np.concatenate((change_points, [len(deltas)]))
    parts = []
    for first_delta, end_delta in zip(starts, ends):
        parts.append(
            struct.pack(
                "<qqI",
                int(timestamps[first_delta]),
                int(deltas[first_delta]),
                int(end_delta - first_delta + 1),
            )
        )
    return b"".join(parts)


def _rle_decode(stream: bytes) -> np.ndarray:
    record = struct.Struct("<qqI")
    pieces = []
    last_emitted: int | None = None
    for start, delta, count in record.iter_unpack(stream):
        run = start + delta * np.arange(count, dtype=np.int64)
        if last_emitted is not None and len(run) and run[0] == last_emitted:
            run = run[1:]
        if len(run):
            pieces.append(run)
            last_emitted = int(run[-1])
    if not pieces:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(pieces)


class ORCLike(StorageFormat):
    """Striped columnar per-series files with min/max indexes."""

    name = "ORC"
    supports_online_analytics = False
    supports_distribution = True
    supports_calendar_rollup = True

    stripe_rows = _STRIPE_ROWS

    def __init__(self) -> None:
        super().__init__()
        self._files: dict[int, list[_Stripe]] = {}
        self._dimension_bytes: dict[int, int] = {}

    def _ingest_series(self, ts: TimeSeries, dimensions: dict[str, str]) -> None:
        # Rows carry the denormalised dimensions, like the paper's setup.
        dimension_values = tuple(dimensions.values())
        ts_builder: list[int] = []
        value_builder: list[float] = []
        stripes: list[_Stripe] = []
        for point in ts:
            if point.value is None:
                continue
            row = (point.tid, point.timestamp, point.value, *dimension_values)
            ts_builder.append(row[1])
            value_builder.append(row[2])
            if len(ts_builder) >= self.stripe_rows:
                stripes.append(
                    _Stripe(
                        np.asarray(ts_builder, dtype=np.int64),
                        np.asarray(value_builder, dtype=np.float64),
                    )
                )
                ts_builder = []
                value_builder = []
        if ts_builder:
            stripes.append(
                _Stripe(
                    np.asarray(ts_builder, dtype=np.int64),
                    np.asarray(value_builder, dtype=np.float64),
                )
            )
        self._files[ts.tid] = stripes
        self._dimension_bytes[ts.tid] = sum(
            len(value) + 8 for value in dimensions.values()
        ) + 4 * len(stripes)

    def size_bytes(self) -> int:
        total = 0
        for tid, stripes in self._files.items():
            total += sum(stripe.size_bytes() for stripe in stripes)
            total += self._dimension_bytes.get(tid, 0) + _FOOTER_BYTES
        return total

    def _read_series(self, tid: int) -> tuple[np.ndarray, np.ndarray]:
        stripes = self._files.get(tid, ())
        if not stripes:
            return np.empty(0, dtype=np.int64), np.empty(0)
        return (
            np.concatenate([stripe.timestamps() for stripe in stripes]),
            np.concatenate([stripe.values() for stripe in stripes]),
        )

    def _read_values(self, tid: int) -> np.ndarray:
        stripes = self._files.get(tid, ())
        if not stripes:
            return np.empty(0)
        return np.concatenate([stripe.values() for stripe in stripes])

    def _read_series_range(
        self, tid: int, start: int | None, end: int | None
    ) -> tuple[np.ndarray, np.ndarray]:
        timestamps = []
        values = []
        for stripe in self._files.get(tid, ()):
            if start is not None and stripe.last < start:
                continue
            if end is not None and stripe.first > end:
                continue
            timestamps.append(stripe.timestamps())
            values.append(stripe.values())
        if not timestamps:
            return np.empty(0, dtype=np.int64), np.empty(0)
        all_ts = np.concatenate(timestamps)
        all_vals = np.concatenate(values)
        mask = np.ones(len(all_ts), dtype=bool)
        if start is not None:
            mask &= all_ts >= start
        if end is not None:
            mask &= all_ts <= end
        return all_ts[mask], all_vals[mask]
