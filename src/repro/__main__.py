"""Command-line entry point: SQL shell and cluster driver.

Usage::

    python -m repro <storage-dir>                 # interactive shell
    python -m repro <storage-dir> -c "SELECT ..." # one statement
    python -m repro --workers 4                   # measured cluster run
    python -m repro --workers 4 --fault crash:1:execute
    python -m repro --workers 4 --simulated       # modelled cluster run

Without ``--workers`` the directory must contain a
:class:`~repro.storage.FileStorage` written by a previous ingestion (see
``examples/persistent_storage.py``). Inside the shell, ``\\dt`` lists
the stored time series, ``\\q`` quits.

With ``--workers N`` the synthetic EP workload is partitioned over a
cluster of N workers — real processes by default (measured wall-clock
scale-out, the mode behind the measured Fig. 20 numbers), or the
sequential in-process simulation with ``--simulated``. ``--fault``
injects worker faults (``crash|slow|drop:worker:method[:delay]``) to
demonstrate master-side failover. An optional directory gives each
worker a persistent store under ``<dir>/worker_<id>``.
"""

from __future__ import annotations

import argparse
import sys

from .cluster import FaultPlan, ModelarCluster, ProcessCluster
from .core.config import Configuration
from .core.errors import ModelarError
from .datasets import generate_ep
from .datasets.ep import EP_CORRELATION
from .models.registry import ModelRegistry
from .query.engine import QueryEngine
from .storage.filestore import FileStorage


def format_rows(rows: list[dict]) -> str:
    """Render query results as a fixed-width table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows[1:]:
        for column in row:
            if column not in columns:
                columns.append(column)
    cells = [
        [("" if row.get(column) is None else str(row.get(column)))
         for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(row[i]) for row in cells))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(column.ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def describe_tables(engine: QueryEngine) -> str:
    """The ``\\dt`` listing: one line per stored time series."""
    lines = ["Tid  Gid  SI        Scaling  Dimensions"]
    metadata = engine.metadata
    for tid in sorted(metadata.all_tids()):
        gid = metadata.gid_of(tid)
        si = metadata.sampling_interval(gid)
        scaling = metadata.scaling(tid)
        dims = ", ".join(
            f"{k}={v}" for k, v in metadata.dimension_row(tid).items()
        )
        lines.append(f"{tid:<4} {gid:<4} {si:<9} {scaling:<8} {dims}")
    return "\n".join(lines)


def run_statement(engine: QueryEngine, statement: str, out) -> None:
    try:
        rows = engine.sql(statement)
    except ModelarError as error:
        print(f"error: {error}", file=out)
        return
    print(format_rows(rows), file=out)


#: Statements the cluster demo scatters over the workers.
CLUSTER_STATEMENTS = (
    "SELECT COUNT(*) FROM DataPoint",
    "SELECT MIN(Value), MAX(Value), AVG(Value) FROM DataPoint",
    "SELECT Entity, SUM(Value) FROM DataPoint GROUP BY Entity",
)


def run_cluster(arguments, out) -> int:
    """The ``--workers N`` mode: measured (or simulated) scale-out."""
    dataset = generate_ep(seed=7)
    config = Configuration(correlation=list(EP_CORRELATION))
    fault_plan = (
        FaultPlan.parse(arguments.fault) if arguments.fault else None
    )
    if arguments.simulated:
        if fault_plan is not None:
            print("error: --fault requires the process cluster "
                  "(drop --simulated)", file=out)
            return 1
        cluster = ModelarCluster(
            arguments.workers, config, dataset.dimensions
        )
        mode = "simulated (sequential in-process)"
    else:
        cluster = ProcessCluster(
            arguments.workers,
            config,
            dataset.dimensions,
            storage_root=arguments.directory,
            fault_plan=fault_plan,
        )
        mode = "measured (one OS process per worker)"
    try:
        print(f"cluster: {arguments.workers} workers, {mode}", file=out)
        ingest = cluster.ingest(dataset.series)
        print(
            f"ingest: {ingest.data_points} points, "
            f"makespan {ingest.measured_makespan:.3f}s",
            file=out,
        )
        for statement in CLUSTER_STATEMENTS:
            print(f"\nmodelardb> {statement}", file=out)
            rows, report = cluster.sql(statement)
            print(format_rows(rows), file=out)
            line = f"({report.measured_makespan:.3f}s"
            if report.failovers:
                moves = ", ".join(
                    f"worker {dead}->worker {target}"
                    for dead, target in report.failovers
                )
                line += f"; failover: {moves}"
            print(line + ")", file=out)
    finally:
        if not arguments.simulated:
            cluster.close()
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "SQL shell over a ModelarDB storage directory, or a "
            "cluster driver with --workers"
        ),
    )
    parser.add_argument(
        "directory",
        nargs="?",
        help=(
            "FileStorage directory to open (shell mode) or the cluster's "
            "storage root (per-worker subdirectories; in-memory if omitted)"
        ),
    )
    parser.add_argument(
        "-c", "--command", help="execute one SQL statement and exit"
    )
    parser.add_argument(
        "-w", "--workers", type=int,
        help="run the synthetic EP workload on an N-worker cluster",
    )
    parser.add_argument(
        "--fault",
        help=(
            "inject worker faults, comma-separated "
            "kind:worker:method[:delay] entries, e.g. crash:1:execute"
        ),
    )
    parser.add_argument(
        "--simulated", action="store_true",
        help="use the sequential in-process cluster simulation",
    )
    arguments = parser.parse_args(argv)

    if arguments.workers is not None:
        if arguments.workers < 1:
            print("error: --workers must be >= 1", file=out)
            return 1
        try:
            return run_cluster(arguments, out)
        except ModelarError as error:
            print(f"error: {error}", file=out)
            return 1
    if arguments.directory is None:
        print("error: a storage directory is required without --workers",
              file=out)
        return 1
    if arguments.fault or arguments.simulated:
        print("error: --fault/--simulated only apply with --workers",
              file=out)
        return 1

    storage = FileStorage(arguments.directory)
    if not storage.time_series():
        print(f"error: no time series stored in {arguments.directory}",
              file=out)
        return 1
    engine = QueryEngine(storage, ModelRegistry())

    if arguments.command:
        run_statement(engine, arguments.command, out)
        return 0

    print(
        f"repro shell — {len(storage.time_series())} series, "
        f"{storage.segment_count()} segments. \\dt lists series, \\q quits.",
        file=out,
    )
    while True:
        try:
            line = input("modelardb> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in ("\\q", "exit", "quit"):
            break
        if line == "\\dt":
            print(describe_tables(engine), file=out)
            continue
        run_statement(engine, line, out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
