"""Command-line SQL shell over a persisted ModelarDB directory.

Usage::

    python -m repro <storage-dir>                 # interactive shell
    python -m repro <storage-dir> -c "SELECT ..." # one statement

The directory must contain a :class:`~repro.storage.FileStorage` written
by a previous ingestion (see ``examples/persistent_storage.py``). Inside
the shell, ``\\dt`` lists the stored time series, ``\\q`` quits.
"""

from __future__ import annotations

import argparse
import sys

from .core.errors import ModelarError
from .models.registry import ModelRegistry
from .query.engine import QueryEngine
from .storage.filestore import FileStorage


def format_rows(rows: list[dict]) -> str:
    """Render query results as a fixed-width table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows[1:]:
        for column in row:
            if column not in columns:
                columns.append(column)
    cells = [
        [("" if row.get(column) is None else str(row.get(column)))
         for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(row[i]) for row in cells))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(column.ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def describe_tables(engine: QueryEngine) -> str:
    """The ``\\dt`` listing: one line per stored time series."""
    lines = ["Tid  Gid  SI        Scaling  Dimensions"]
    metadata = engine.metadata
    for tid in sorted(metadata.all_tids()):
        gid = metadata.gid_of(tid)
        si = metadata.sampling_interval(gid)
        scaling = metadata.scaling(tid)
        dims = ", ".join(
            f"{k}={v}" for k, v in metadata.dimension_row(tid).items()
        )
        lines.append(f"{tid:<4} {gid:<4} {si:<9} {scaling:<8} {dims}")
    return "\n".join(lines)


def run_statement(engine: QueryEngine, statement: str, out) -> None:
    try:
        rows = engine.sql(statement)
    except ModelarError as error:
        print(f"error: {error}", file=out)
        return
    print(format_rows(rows), file=out)


def main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SQL shell over a ModelarDB storage directory",
    )
    parser.add_argument("directory", help="FileStorage directory to open")
    parser.add_argument(
        "-c", "--command", help="execute one SQL statement and exit"
    )
    arguments = parser.parse_args(argv)

    storage = FileStorage(arguments.directory)
    if not storage.time_series():
        print(f"error: no time series stored in {arguments.directory}",
              file=out)
        return 1
    engine = QueryEngine(storage, ModelRegistry())

    if arguments.command:
        run_statement(engine, arguments.command, out)
        return 0

    print(
        f"repro shell — {len(storage.time_series())} series, "
        f"{storage.segment_count()} segments. \\dt lists series, \\q quits.",
        file=out,
    )
    while True:
        try:
            line = input("modelardb> ").strip()
        except (EOFError, KeyboardInterrupt):
            break
        if not line:
            continue
        if line in ("\\q", "exit", "quit"):
            break
        if line == "\\dt":
            print(describe_tables(engine), file=out)
            continue
        run_statement(engine, line, out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
