"""Command-line entry point: SQL shell, cluster driver and server.

Usage::

    python -m repro <storage-dir>                 # interactive shell
    python -m repro <storage-dir> -c "SELECT ..." # one statement
    python -m repro --workers 4                   # measured cluster run
    python -m repro --workers 4 --fault crash:1:execute
    python -m repro --workers 4 --simulated       # modelled cluster run
    python -m repro serve <storage-dir> --port 9972
    python -m repro loadgen --port 9972 --clients 32 --duration 10

Without ``--workers`` the directory must contain a
:class:`~repro.storage.FileStorage` written by a previous ingestion (see
``examples/persistent_storage.py``). Inside the shell, ``\\dt`` lists
the stored time series, ``\\q`` quits.

With ``--workers N`` the synthetic EP workload is partitioned over a
cluster of N workers — real processes by default (measured wall-clock
scale-out, the mode behind the measured Fig. 20 numbers), or the
sequential in-process simulation with ``--simulated``. ``--fault``
injects worker faults (``crash|slow|drop:worker:method[:delay]``) to
demonstrate master-side failover. An optional directory gives each
worker a persistent store under ``<dir>/worker_<id>``.

``serve`` exposes a storage directory over the concurrent query server
(:mod:`repro.server`); ``loadgen`` drives a running server with the
closed-loop load generator and prints throughput and tail latency;
``metrics`` dumps a running server's metrics registry (see
``docs/METRICS.md``). Setting ``REPRO_PROFILE=1`` runs any invocation
under cProfile (see :mod:`repro.obs.profiling`).

The ``build_*_parser`` functions exist so the documentation consistency
check (``scripts/check_docs.py``) can verify that every flag shown in
``docs/OPERATIONS.md`` actually parses.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from .cluster import FaultPlan, ModelarCluster, ProcessCluster
from .core.config import Configuration
from .core.errors import ModelarError
from .datasets import generate_ep
from .datasets.ep import EP_CORRELATION
from .modelardb import ModelarDB
from .obs import maybe_profile
from .query.engine import QueryEngine


def format_rows(rows: list[dict]) -> str:
    """Render query results as a fixed-width table."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0])
    for row in rows[1:]:
        for column in row:
            if column not in columns:
                columns.append(column)
    cells = [
        [("" if row.get(column) is None else str(row.get(column)))
         for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(row[i]) for row in cells))
        for i, column in enumerate(columns)
    ]
    lines = [
        "  ".join(column.ljust(width) for column, width in zip(columns, widths)),
        "  ".join("-" * width for width in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    lines.append(f"({len(rows)} row{'s' if len(rows) != 1 else ''})")
    return "\n".join(lines)


def describe_tables(engine: QueryEngine) -> str:
    """The ``\\dt`` listing: one line per stored time series."""
    lines = ["Tid  Gid  SI        Scaling  Dimensions"]
    metadata = engine.metadata
    for tid in sorted(metadata.all_tids()):
        gid = metadata.gid_of(tid)
        si = metadata.sampling_interval(gid)
        scaling = metadata.scaling(tid)
        dims = ", ".join(
            f"{k}={v}" for k, v in metadata.dimension_row(tid).items()
        )
        lines.append(f"{tid:<4} {gid:<4} {si:<9} {scaling:<8} {dims}")
    return "\n".join(lines)


def run_statement(db: ModelarDB, statement: str, out) -> None:
    try:
        rows = db.query(statement)
    except ModelarError as error:
        print(f"error: {error}", file=out)
        return
    print(format_rows(rows), file=out)


#: Statements the cluster demo scatters over the workers.
CLUSTER_STATEMENTS = (
    "SELECT COUNT(*) FROM DataPoint",
    "SELECT MIN(Value), MAX(Value), AVG(Value) FROM DataPoint",
    "SELECT Entity, SUM(Value) FROM DataPoint GROUP BY Entity",
)


def run_cluster(arguments, out) -> int:
    """The ``--workers N`` mode: measured (or simulated) scale-out."""
    dataset = generate_ep(seed=7)
    config = Configuration(correlation=list(EP_CORRELATION))
    fault_plan = (
        FaultPlan.parse(arguments.fault) if arguments.fault else None
    )
    if arguments.simulated:
        if fault_plan is not None:
            print("error: --fault requires the process cluster "
                  "(drop --simulated)", file=out)
            return 1
        cluster = ModelarCluster(
            arguments.workers, config, dataset.dimensions
        )
        mode = "simulated (sequential in-process)"
    else:
        cluster = ProcessCluster(
            arguments.workers,
            config,
            dataset.dimensions,
            storage_root=arguments.directory,
            fault_plan=fault_plan,
        )
        mode = "measured (one OS process per worker)"
    try:
        print(f"cluster: {arguments.workers} workers, {mode}", file=out)
        ingest = cluster.ingest(dataset.series)
        print(
            f"ingest: {ingest.data_points} points, "
            f"makespan {ingest.measured_makespan:.3f}s",
            file=out,
        )
        for statement in CLUSTER_STATEMENTS:
            print(f"\nmodelardb> {statement}", file=out)
            rows, report = cluster.sql(statement)
            print(format_rows(rows), file=out)
            line = f"({report.measured_makespan:.3f}s"
            if report.failovers:
                moves = ", ".join(
                    f"worker {dead}->worker {target}"
                    for dead, target in report.failovers
                )
                line += f"; failover: {moves}"
            print(line + ")", file=out)
    finally:
        if not arguments.simulated:
            cluster.close()
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="serve a FileStorage directory over the query server",
    )
    parser.add_argument("directory", help="FileStorage directory to serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9972)
    parser.add_argument(
        "--max-inflight", type=int, default=8,
        help="queries executing concurrently (executor pool width)",
    )
    parser.add_argument(
        "--max-waiting", type=int, default=32,
        help="queries allowed to queue before fast-fail busy rejection",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="default per-query deadline in seconds",
    )
    parser.add_argument(
        "--cache-capacity", type=int, default=256,
        help="query-result cache entries (0 disables caching)",
    )
    parser.add_argument(
        "--shards", type=int, default=0,
        help=(
            "serve through the sharded tier with this many worker "
            "processes (0 = embedded single-process serving)"
        ),
    )
    parser.add_argument(
        "--replicas", type=int, default=1,
        help=(
            "replicas per shard (with --shards); >= 2 lets queries "
            "survive a worker crash via retry-on-replica"
        ),
    )
    parser.add_argument(
        "--rebalance-every", type=int, default=0,
        help=(
            "with --shards: auto-rebalance hot shards every N queries "
            "(0 disables automatic rebalancing)"
        ),
    )
    return parser


def run_serve(argv: list[str], out) -> int:
    """The ``serve`` subcommand: expose a storage directory over TCP."""
    from .server import EmbeddedDispatcher, QueryServer

    arguments = build_serve_parser().parse_args(argv)
    if arguments.shards < 0 or arguments.replicas < 1:
        print("error: --shards must be >= 0 and --replicas >= 1", file=out)
        return 1

    with ModelarDB.open(arguments.directory) as db:
        storage = db.storage
        if not storage.time_series():
            print(
                f"error: no time series stored in {arguments.directory}",
                file=out,
            )
            return 1
        if arguments.shards:
            from .shard import ShardedCluster, ShardedDispatcher

            tier = ShardedCluster(
                arguments.shards,
                n_replicas=arguments.replicas,
                auto_rebalance_interval=arguments.rebalance_every,
            )
            placement = tier.load_storage(storage)
            print(
                f"sharded tier: {arguments.shards} workers x "
                f"{arguments.replicas} replicas, "
                f"{placement['groups']} groups over "
                f"{len(placement['shards'])} shards",
                file=out,
            )
            dispatcher = ShardedDispatcher(
                tier,
                owns_tier=True,
                result_cache_capacity=arguments.cache_capacity,
            )
        else:
            dispatcher = EmbeddedDispatcher(
                db.engine,
                owned_storage=storage,
                result_cache_capacity=arguments.cache_capacity,
            )
        server = QueryServer(
            dispatcher,
            host=arguments.host,
            port=arguments.port,
            max_inflight=arguments.max_inflight,
            max_waiting=arguments.max_waiting,
            default_timeout=arguments.timeout,
        )

        async def _run() -> None:
            host, port = await server.start()
            print(
                f"serving {arguments.directory} on {host}:{port} "
                f"({len(storage.time_series())} series, "
                f"{storage.segment_count()} segments); Ctrl-C stops",
                file=out,
            )
            try:
                await server.serve_forever()
            finally:
                await server.stop()

        try:
            asyncio.run(_run())
        except KeyboardInterrupt:
            print("interrupted; storage closed", file=out)
    return 0


def build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro loadgen",
        description=(
            "drive a running query server with N closed-loop clients "
            "over the paper's evaluation workloads"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9972)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--duration", type=float, default=5.0,
        help="measurement window in seconds",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--start", type=int, help="data start time (ms) to add P/R queries"
    )
    parser.add_argument(
        "--end", type=int, help="data end time (ms) to add P/R queries"
    )
    parser.add_argument(
        "--si", type=int, help="sampling interval (ms) for P/R queries"
    )
    parser.add_argument(
        "--json", dest="json_path",
        help="also write the report as JSON to this path",
    )
    return parser


def run_loadgen(argv: list[str], out) -> int:
    """The ``loadgen`` subcommand: closed-loop load on a live server."""
    from .server import ServerClient, build_workload, run_load

    arguments = build_loadgen_parser().parse_args(argv)

    try:
        with ServerClient(arguments.host, arguments.port) as client:
            catalog = client.stats().get("catalog", {})
    except (OSError, ModelarError) as error:
        print(
            f"error: cannot reach server at "
            f"{arguments.host}:{arguments.port}: {error}",
            file=out,
        )
        return 1
    tids = catalog.get("tids") or []
    if not tids:
        print("error: the server reports no time series", file=out)
        return 1
    statements = build_workload(
        tids,
        start_time=arguments.start,
        end_time=arguments.end,
        sampling_interval=arguments.si,
        seed=arguments.seed,
    )
    print(
        f"load: {arguments.clients} clients x {arguments.duration:.0f}s "
        f"over {len(statements)} statements",
        file=out,
    )
    report = run_load(
        arguments.host,
        arguments.port,
        statements,
        clients=arguments.clients,
        duration=arguments.duration,
        request_timeout=arguments.timeout,
    )
    print(report.summary(), file=out)
    if arguments.json_path:
        with open(arguments.json_path, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2)
        print(f"wrote {arguments.json_path}", file=out)
    return 0


def build_metrics_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro metrics",
        description=(
            "dump a running query server's metrics registry "
            "(reference: docs/METRICS.md)"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9972)
    parser.add_argument(
        "--json", dest="json_path",
        help="also write the snapshot as JSON to this path",
    )
    return parser


def format_metrics(snapshot: dict) -> str:
    """Render a registry snapshot as sorted name/value lines."""
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        lines.append(f"{name} {value}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        lines.append(f"{name} {value}")
    for name, payload in sorted(snapshot.get("histograms", {}).items()):
        lines.append(
            f"{name} count={payload['count']} "
            f"mean_ms={payload['mean_ms']:.3f} "
            f"p99_ms={payload['p99_ms']:.3f} "
            f"max_ms={payload['max_ms']:.3f}"
        )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def run_metrics(argv: list[str], out) -> int:
    """The ``metrics`` subcommand: dump a live server's registry."""
    from .server import ServerClient

    arguments = build_metrics_parser().parse_args(argv)
    try:
        with ServerClient(arguments.host, arguments.port) as client:
            snapshot = client.metrics()
    except (OSError, ModelarError) as error:
        print(
            f"error: cannot reach server at "
            f"{arguments.host}:{arguments.port}: {error}",
            file=out,
        )
        return 1
    print(format_metrics(snapshot), file=out)
    if arguments.json_path:
        with open(arguments.json_path, "w") as handle:
            json.dump(snapshot, handle, indent=2)
        print(f"wrote {arguments.json_path}", file=out)
    return 0


#: Subcommands dispatched before the legacy flag-style interface.
_SUBCOMMANDS = {
    "serve": run_serve,
    "loadgen": run_loadgen,
    "metrics": run_metrics,
}

#: Parser builders per subcommand — the docs-consistency check parses
#: every command line shown in docs/OPERATIONS.md against these.
SUBCOMMAND_PARSERS = {
    "serve": build_serve_parser,
    "loadgen": build_loadgen_parser,
    "metrics": build_metrics_parser,
}


def main(argv: list[str] | None = None, out=None) -> int:
    with maybe_profile():
        return _main(argv, out)


def build_main_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "SQL shell over a ModelarDB storage directory, or a "
            "cluster driver with --workers"
        ),
    )
    parser.add_argument(
        "directory",
        nargs="?",
        help=(
            "FileStorage directory to open (shell mode) or the cluster's "
            "storage root (per-worker subdirectories; in-memory if omitted)"
        ),
    )
    parser.add_argument(
        "-c", "--command", help="execute one SQL statement and exit"
    )
    parser.add_argument(
        "-w", "--workers", type=int,
        help="run the synthetic EP workload on an N-worker cluster",
    )
    parser.add_argument(
        "--fault",
        help=(
            "inject worker faults, comma-separated "
            "kind:worker:method[:delay] entries, e.g. crash:1:execute"
        ),
    )
    parser.add_argument(
        "--simulated", action="store_true",
        help="use the sequential in-process cluster simulation",
    )
    return parser


def _main(argv: list[str] | None = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] in _SUBCOMMANDS:
        try:
            return _SUBCOMMANDS[argv[0]](argv[1:], out)
        except ModelarError as error:
            print(f"error: {error}", file=out)
            return 1
    arguments = build_main_parser().parse_args(argv)

    if arguments.workers is not None:
        if arguments.workers < 1:
            print("error: --workers must be >= 1", file=out)
            return 1
        try:
            return run_cluster(arguments, out)
        except ModelarError as error:
            print(f"error: {error}", file=out)
            return 1
    if arguments.directory is None:
        print("error: a storage directory is required without --workers",
              file=out)
        return 1
    if arguments.fault or arguments.simulated:
        print("error: --fault/--simulated only apply with --workers",
              file=out)
        return 1

    with ModelarDB.open(arguments.directory) as db:
        storage = db.storage
        if not storage.time_series():
            print(f"error: no time series stored in {arguments.directory}",
                  file=out)
            return 1
        engine = db.engine

        if arguments.command:
            run_statement(db, arguments.command, out)
            return 0

        print(
            f"repro shell — {len(storage.time_series())} series, "
            f"{storage.segment_count()} segments. "
            "\\dt lists series, \\q quits.",
            file=out,
        )
        while True:
            try:
                line = input("modelardb> ").strip()
            except (EOFError, KeyboardInterrupt):
                break
            if not line:
                continue
            if line in ("\\q", "exit", "quit"):
                break
            if line == "\\dt":
                print(describe_tables(engine), file=out)
                continue
            run_statement(db, line, out)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
