"""The correction path: late and corrected data as segment revisions.

In-order ingestion produces base-generation segments (``revision == 0``).
When data points arrive *after* their group window was already flushed —
a late sensor reading, or an operator correcting a bad value — the
affected window is re-fitted and superseding segments are emitted with a
strictly higher revision, keyed ``(gid, end_time, revision)``. The store
stamps each revision with its knowledge-time counter at flush, so
``AS OF`` queries can reproduce what was known before the correction
while default reads resolve latest-wins (see
:func:`repro.storage.scan.resolve_visible`).

Re-fitting reconstructs the affected window from the *visible* segments
(decoded model values — already scaled and float32-quantized), overlays
the correction values, and replays the whole group through a fresh
:class:`~repro.ingest.generator.SegmentGenerator`. The affected set is
closed under overlap: a dynamic split can leave two same-gid segments
covering complementary member series over overlapping time ranges, so the
window grows to the hull of every overlapping visible segment until a
fixpoint is reached — a revision never half-shadows a base segment.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..core.config import Configuration
from ..core.errors import IngestionError
from ..core.segment import SegmentGroup
from ..models.registry import ModelRegistry
from ..storage.interface import Storage
from ..storage.scan import SegmentScan, resolve_visible
from .generator import SegmentGenerator
from .ingestor import record_ingest_stats
from .stats import IngestStats

#: One correction: (tid, grid timestamp, new raw value). ``None`` as the
#: value erases the point (the series enters a gap at that timestamp).
CorrectionPoint = tuple[int, int, float | None]


def apply_corrections(
    storage: Storage,
    config: Configuration,
    registry: ModelRegistry,
    points: Iterable[CorrectionPoint],
    stats: IngestStats | None = None,
) -> IngestStats:
    """Apply correction points, emitting superseding segment revisions.

    ``points`` may span several groups; each affected group window is
    re-fitted independently. Returns the accumulated statistics
    (``revisions`` and ``out_of_order_points`` included), which are also
    folded into the metrics registry.
    """
    stats = stats if stats is not None else IngestStats()
    groups = storage.group_metadata()
    tid_to_gid = {
        tid: gid for gid, (tids, _) in groups.items() for tid in tids
    }
    scalings = {
        record.tid: record.scaling for record in storage.time_series()
    }
    by_gid: dict[int, list[CorrectionPoint]] = {}
    for tid, timestamp, value in points:
        gid = tid_to_gid.get(tid)
        if gid is None:
            raise IngestionError(f"correction references unknown tid {tid}")
        by_gid.setdefault(gid, []).append((tid, timestamp, value))
    revisions: list[SegmentGroup] = []
    for gid in sorted(by_gid):
        group_tids, sampling_interval = groups[gid]
        revisions.extend(
            _revise_group(
                storage,
                config,
                registry,
                gid,
                group_tids,
                sampling_interval,
                by_gid[gid],
                scalings,
                stats,
            )
        )
        stats.out_of_order_points += len(by_gid[gid])
    if revisions:
        storage.insert_segments(revisions)
        stats.revisions += len(revisions)
    record_ingest_stats(stats)
    return stats


def _revise_group(
    storage: Storage,
    config: Configuration,
    registry: ModelRegistry,
    gid: int,
    group_tids: tuple[int, ...],
    sampling_interval: int,
    corrections: Sequence[CorrectionPoint],
    scalings: Mapping[int, float],
    stats: IngestStats,
) -> list[SegmentGroup]:
    """Re-fit one group's affected window; returns unstamped revisions."""
    si = sampling_interval
    visible = list(
        storage.scan(SegmentScan(gids=(gid,)))
    )
    start = min(timestamp for _, timestamp, _ in corrections)
    end = max(timestamp for _, timestamp, _ in corrections)
    affected = _affected_fixpoint(visible, start, end)
    if affected:
        start = min(start, min(s.start_time for s in affected))
        end = max(end, max(s.end_time for s in affected))
    anchor = affected[0].start_time if affected else start
    for tid, timestamp, _ in corrections:
        if (timestamp - anchor) % si != 0:
            raise IngestionError(
                f"correction timestamp {timestamp} for tid {tid} is off "
                f"the group's {si}ms sampling grid"
            )
    start = anchor + ((start - anchor) // si) * si
    ticks = (end - start) // si + 1
    columns = {tid: column for column, tid in enumerate(group_tids)}
    matrix = _reconstruct(
        registry, affected, group_tids, columns, start, ticks, si
    )
    for tid, timestamp, value in corrections:
        row = (timestamp - start) // si
        if value is None:
            matrix[row, columns[tid]] = math.nan
        else:
            # Pre-scale like in-order ingestion would; the generator
            # below runs with unity scalings, so scaling is applied
            # exactly once, followed by the same float32 round trip.
            matrix[row, columns[tid]] = value * scalings.get(tid, 1.0)
    new_revision = max((s.revision for s in affected), default=0) + 1
    revisions: list[SegmentGroup] = []

    def sink(segment: SegmentGroup) -> None:
        revisions.append(replace(segment, revision=new_revision))

    generator = SegmentGenerator(
        gid=gid,
        group_tids=group_tids,
        subset_tids=group_tids,
        sampling_interval=si,
        config=config,
        registry=registry,
        sink=sink,
        scalings=None,  # values are already scaled (decoded or pre-scaled)
        stats=stats,
    )
    for row in range(ticks):
        values: dict[int, float | None] = {}
        for tid in group_tids:
            value = matrix[row, columns[tid]]
            values[tid] = None if math.isnan(value) else float(value)
        generator.tick(start + row * si, values)
    generator.close()
    return revisions


def _affected_fixpoint(
    visible: list[SegmentGroup], start: int, end: int
) -> list[SegmentGroup]:
    """Visible segments overlapping the window, closed under overlap.

    Growing the window to a newly included segment's hull can pull in
    further segments (split sub-groups overlap in time), so iterate
    until the affected set stops growing.
    """
    affected: list[SegmentGroup] = []
    included: set[int] = set()
    while True:
        grew = False
        for index, segment in enumerate(visible):
            if index in included:
                continue
            if segment.overlaps(start, end):
                affected.append(segment)
                included.add(index)
                start = min(start, segment.start_time)
                end = max(end, segment.end_time)
                grew = True
        if not grew:
            return affected


def _reconstruct(
    registry: ModelRegistry,
    affected: Sequence[SegmentGroup],
    group_tids: tuple[int, ...],
    columns: Mapping[int, int],
    start: int,
    ticks: int,
    si: int,
) -> np.ndarray:
    """Decode the affected segments into a (ticks, group) value matrix.

    Values are the stored (scaled, float32-quantized) reconstruction;
    NaN marks gaps — timestamps no affected segment covers for a series.
    """
    matrix = np.full((ticks, len(group_tids)), np.nan)
    for segment in affected:
        model = registry.decode(
            segment.mid,
            segment.parameters,
            segment.n_columns,
            segment.length,
        )
        block = model.values_block(0, segment.length - 1)
        first_row = (segment.start_time - start) // si
        for column, tid in enumerate(segment.member_tids):
            matrix[
                first_row:first_row + segment.length, columns[tid]
            ] = block[:, column]
    return matrix
