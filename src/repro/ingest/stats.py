"""Ingestion statistics, including the model-usage mix of Figs. 16-17."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ModelUsage:
    """Usage counters for one model type."""

    segments: int = 0
    data_points: int = 0
    bytes: int = 0


@dataclass
class IngestStats:
    """Counters accumulated while ingesting one or more groups."""

    data_points: int = 0  # raw data points ingested (excluding gap points)
    segments: int = 0
    storage_bytes: int = 0
    splits: int = 0
    joins: int = 0
    usage: dict[str, ModelUsage] = field(default_factory=dict)

    def record_segment(
        self, model_name: str, data_points: int, storage_bytes: int
    ) -> None:
        usage = self.usage.setdefault(model_name, ModelUsage())
        usage.segments += 1
        usage.data_points += data_points
        usage.bytes += storage_bytes
        self.segments += 1
        self.storage_bytes += storage_bytes

    def model_mix(self) -> dict[str, float]:
        """Percentage of data points represented per model (Figs. 16-17)."""
        total = sum(usage.data_points for usage in self.usage.values())
        if total == 0:
            return {}
        return {
            name: 100.0 * usage.data_points / total
            for name, usage in self.usage.items()
        }

    def merge(self, other: "IngestStats") -> None:
        self.data_points += other.data_points
        self.segments += other.segments
        self.storage_bytes += other.storage_bytes
        self.splits += other.splits
        self.joins += other.joins
        for name, usage in other.usage.items():
            mine = self.usage.setdefault(name, ModelUsage())
            mine.segments += usage.segments
            mine.data_points += usage.data_points
            mine.bytes += usage.bytes
