"""Ingestion statistics, including the model-usage mix of Figs. 16-17.

:class:`IngestStats` is the unit of accounting shared by the sequential
ingestion path and the process-parallel cluster: workers accumulate stats
locally and ship them to the master over the RPC layer, so the whole
object graph (including the nested per-model :class:`ModelUsage` dicts)
must stay plainly picklable, and :meth:`IngestStats.merge` must be
associative so per-worker partial stats can be folded in any grouping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class ModelUsage:
    """Usage counters for one model type."""

    segments: int = 0
    data_points: int = 0
    bytes: int = 0


@dataclass
class IngestStats:
    """Counters accumulated while ingesting one or more groups."""

    data_points: int = 0  # raw data points ingested (excluding gap points)
    segments: int = 0
    storage_bytes: int = 0
    splits: int = 0
    joins: int = 0
    #: Columnar chunks fed through the batch ingestion path.
    chunks: int = 0
    #: Ticks the batch path handed to the scalar loop because a dynamic
    #: split was active (sub-generators cover different column subsets).
    fallback_ticks: int = 0
    #: Superseding segment revisions emitted by the correction path.
    revisions: int = 0
    #: Correction points that arrived after their group window was
    #: already flushed (late or corrected data).
    out_of_order_points: int = 0
    usage: dict[str, ModelUsage] = field(default_factory=dict)
    #: Fit attempts per model type — every time a model instance was
    #: offered a data point batch, whether or not it won the emit.
    fits: dict[str, int] = field(default_factory=dict)

    def record_fit(self, model_name: str, attempts: int = 1) -> None:
        self.fits[model_name] = self.fits.get(model_name, 0) + attempts

    def record_segment(
        self, model_name: str, data_points: int, storage_bytes: int
    ) -> None:
        usage = self.usage.setdefault(model_name, ModelUsage())
        usage.segments += 1
        usage.data_points += data_points
        usage.bytes += storage_bytes
        self.segments += 1
        self.storage_bytes += storage_bytes

    def model_mix(self) -> dict[str, float]:
        """Percentage of data points represented per model (Figs. 16-17)."""
        total = sum(usage.data_points for usage in self.usage.values())
        if total == 0:
            return {}
        return {
            name: 100.0 * usage.data_points / total
            for name, usage in self.usage.items()
        }

    def merge(self, other: "IngestStats") -> None:
        """Fold another stats object into this one in place.

        Merging is associative and commutative: every counter is a sum,
        so per-worker partial stats can be combined in any grouping —
        the property the distributed ingest path relies on.
        """
        self.data_points += other.data_points
        self.segments += other.segments
        self.storage_bytes += other.storage_bytes
        self.splits += other.splits
        self.joins += other.joins
        self.chunks += other.chunks
        self.fallback_ticks += other.fallback_ticks
        self.revisions += other.revisions
        self.out_of_order_points += other.out_of_order_points
        for name, usage in other.usage.items():
            mine = self.usage.setdefault(name, ModelUsage())
            mine.segments += usage.segments
            mine.data_points += usage.data_points
            mine.bytes += usage.bytes
        for name, attempts in other.fits.items():
            self.fits[name] = self.fits.get(name, 0) + attempts

    @classmethod
    def merged(cls, parts: Iterable["IngestStats"]) -> "IngestStats":
        """A fresh stats object combining ``parts`` (none are mutated)."""
        total = cls()
        for part in parts:
            total.merge(part)
        return total
