"""Ingestion drivers: stream time series groups into a segment store.

The :class:`Ingestor` replays already-collected time series through the
group ingestion pipeline in timestamp order, mimicking the streaming
receiver of the paper's architecture (Fig. 4) with the bulk-write
buffering of Table 1. Online analytics work because segments become
visible in the store as each bulk write lands.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Iterable, Iterator

import numpy as np

from ..core.config import Configuration
from ..core.group import TimeSeriesGroup
from ..core.segment import SegmentGroup
from ..models.registry import ModelRegistry
from ..obs import get_registry
from ..storage.interface import Storage
from .splitter import GroupIngestor
from .stats import IngestStats


def record_ingest_stats(stats: IngestStats) -> None:
    """Fold one group's :class:`IngestStats` into the metrics registry.

    Called once per ingested group (not per tick) so the hot ingest loop
    never touches registry locks; the same batching makes the counters
    correct when worker stats are merged on the cluster master.
    """
    registry = get_registry()
    registry.counter("ingest.points_total").inc(stats.data_points)
    registry.counter("ingest.splits_total").inc(stats.splits)
    registry.counter("ingest.joins_total").inc(stats.joins)
    registry.counter("ingest.chunks_total").inc(stats.chunks)
    registry.counter("ingest.scalar_fallback_ticks_total").inc(
        stats.fallback_ticks
    )
    registry.counter("ingest.revisions_total").inc(stats.revisions)
    registry.counter("ingest.out_of_order_points_total").inc(
        stats.out_of_order_points
    )
    for name, usage in stats.usage.items():
        registry.counter(
            "ingest.segments_total", model=name
        ).inc(usage.segments)
        registry.counter(
            "ingest.segment_bytes_total", model=name
        ).inc(usage.bytes)
    for name, attempts in stats.fits.items():
        registry.counter(
            "ingest.model_fits_total", model=name
        ).inc(attempts)


def group_ticks(
    group: TimeSeriesGroup,
) -> Iterator[tuple[int, dict[int, float | None]]]:
    """Yield (timestamp, {tid: value}) over the group's combined grid.

    Series that have not started or have already ended at a timestamp
    are reported as ``None`` exactly like an in-series gap, since from
    the generator's point of view both mean "no value at this SI".
    """
    si = group.sampling_interval
    start = min(ts.start_time for ts in group)
    end = max(ts.end_time for ts in group)
    columns = [
        (ts.tid, ts.start_time, ts.values, len(ts)) for ts in group
    ]
    for timestamp in range(start, end + 1, si):
        values: dict[int, float | None] = {}
        for tid, series_start, series_values, length in columns:
            index = (timestamp - series_start) // si
            if 0 <= index < length:
                value = series_values[index]
                values[tid] = None if math.isnan(value) else float(value)
            else:
                values[tid] = None
        yield timestamp, values


def group_tick_blocks(
    group: TimeSeriesGroup, chunk_size: int
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(timestamps, matrix)`` columnar chunks over the group grid.

    The columnar counterpart of :func:`group_ticks`: each chunk holds up
    to ``chunk_size`` consecutive ticks as an int64 timestamp vector and
    a ``(ticks, n_series)`` float64 matrix in group column order, with
    NaN wherever a series has no value (in-series gap, not yet started,
    or already ended). Built with slice copies instead of per-tick dict
    assembly — this is where the batch path sheds the scalar overhead.
    """
    si = group.sampling_interval
    start = min(ts.start_time for ts in group)
    end = max(ts.end_time for ts in group)
    total = (end - start) // si + 1
    columns = [
        ((ts.start_time - start) // si, ts.values) for ts in group
    ]
    n_series = len(columns)
    for block_start in range(0, total, chunk_size):
        block_len = min(chunk_size, total - block_start)
        matrix = np.full((block_len, n_series), np.nan)
        for column, (first, values) in enumerate(columns):
            lo = max(block_start, first)
            hi = min(block_start + block_len, first + len(values))
            if lo < hi:
                matrix[lo - block_start:hi - block_start, column] = (
                    values[lo - first:hi - first]
                )
        timestamps = start + si * np.arange(
            block_start, block_start + block_len, dtype=np.int64
        )
        yield timestamps, matrix


class Ingestor:
    """Ingest groups into a storage backend with bulk writes."""

    def __init__(
        self,
        config: Configuration,
        registry: ModelRegistry,
        storage: Storage,
        on_flush: Callable[[], None] | None = None,
    ) -> None:
        self._config = config
        self._registry = registry
        self._storage = storage
        self._write_buffer: list[SegmentGroup] = []
        #: Invoked after every bulk write lands in the store — the hook
        #: query-side caches use to invalidate (segments just became
        #: visible, so cached results/decodes may now be stale).
        self._on_flush = on_flush

    def ingest_group(self, group: TimeSeriesGroup) -> IngestStats:
        """Ingest one group end-to-end and return its statistics."""
        stats = IngestStats()
        ingestor = GroupIngestor(
            group, self._config, self._registry, self._buffer_write, stats
        )
        chunk_size = self._config.ingest_chunk_size
        if chunk_size > 1:
            for timestamps, matrix in group_tick_blocks(group, chunk_size):
                ingestor.tick_block(timestamps, matrix)
                stats.chunks += 1
        else:
            for timestamp, values in group_ticks(group):
                ingestor.tick(timestamp, values)
        ingestor.finish()
        self._flush()
        record_ingest_stats(stats)
        return stats

    def ingest(self, groups: Iterable[TimeSeriesGroup]) -> IngestStats:
        """Ingest many groups; returns merged statistics."""
        return IngestStats.merged(
            self.ingest_group(group) for group in groups
        )

    def _buffer_write(self, segment: SegmentGroup) -> None:
        self._write_buffer.append(segment)
        if len(self._write_buffer) >= self._config.bulk_write_size:
            self._flush()

    def _flush(self) -> None:
        if self._write_buffer:
            started = time.perf_counter()
            self._storage.insert_segments(self._write_buffer)
            get_registry().histogram("ingest.flush_seconds").record(
                time.perf_counter() - started
            )
            self._write_buffer.clear()
            if self._on_flush is not None:
                self._on_flush()
