"""Dynamic splitting and joining of time series groups (Section 4.2).

External events (a turbine shutting down, a damaged sensor) can make the
series of a group temporarily uncorrelated, ruining compression. The
:class:`GroupIngestor` therefore watches the compression ratio of every
emitted segment and, when a segment falls below a configurable fraction
of the group's average ratio while unflushed data points remain, runs
Algorithm 3 to split the group into sub-groups whose buffered points are
pairwise within *twice* the error bound (two points outside the double
bound can never be approximated together). Series currently in a gap are
grouped together.

Split groups are rejoined by Algorithm 4: a sub-group becomes a join
candidate after emitting a number of segments, compares the reverse
buffered points of one representative series against the other
sub-groups, and merges when the overlap stays within the double bound.
The required segment count doubles after every failed attempt, since each
failure is further evidence the split is the right structure.

Deviations from the paper, both documented in DESIGN.md:

* when splitting, the pending (unflushed) window is *replayed* into the
  new sub-generators rather than handled by a retained SG0, which keeps
  sub-generators synchronised because this driver ticks them all from a
  single loop; and
* when joining, both sub-generators are flushed before the merged
  generator starts, instead of aligning their pending buffers.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..core.config import Configuration
from ..core.group import TimeSeriesGroup
from ..models.registry import ModelRegistry
from .generator import SegmentGenerator, SegmentSink
from .stats import IngestStats

#: Segments a fresh split must emit before its first join attempt.
INITIAL_JOIN_THRESHOLD = 1


def within_double_bound(
    value_a: float, value_b: float, error_bound: float
) -> bool:
    """Whether two values could share one model under the error bound.

    True when the relative-error intervals of the two values overlap,
    i.e. some estimate is within the bound of both (the double-bound test
    of Algorithms 3 and 4).
    """
    percent = error_bound / 100.0
    lower_a = value_a - abs(value_a) * percent
    upper_a = value_a + abs(value_a) * percent
    lower_b = value_b - abs(value_b) * percent
    upper_b = value_b + abs(value_b) * percent
    return max(lower_a, lower_b) <= min(upper_a, upper_b)


class _BlockRow:
    """Mapping-like view of one columnar block row (Tid -> value).

    Stands in for the scalar path's per-tick dict inside the split/join
    window: ``get`` returns ``None`` where the row holds NaN (a gap),
    matching ``group_ticks`` semantics, without materializing a dict per
    tick on the block path.
    """

    __slots__ = ("_index", "_row")

    def __init__(self, index: dict[int, int], row: np.ndarray) -> None:
        self._index = index
        self._row = row

    def get(self, tid: int, default=None):
        column = self._index.get(tid)
        if column is None:
            return default
        value = float(self._row[column])
        return default if value != value else value

    def __getitem__(self, tid: int) -> float:
        value = self.get(tid)
        if value is None:
            raise KeyError(tid)
        return value


@dataclass
class _SubGroup:
    """One active sub-group and its join bookkeeping."""

    tids: tuple[int, ...]
    generator: SegmentGenerator
    emitted_since_split: int = 0
    join_threshold: int = INITIAL_JOIN_THRESHOLD
    is_split: bool = False
    split_pending: bool = field(default=False, repr=False)


class GroupIngestor:
    """Ingestion driver for one time series group with dynamic split/join."""

    def __init__(
        self,
        group: TimeSeriesGroup,
        config: Configuration,
        registry: ModelRegistry,
        sink: SegmentSink,
        stats: IngestStats | None = None,
    ) -> None:
        self.group = group
        self._config = config
        self._registry = registry
        self._sink = sink
        self.stats = stats if stats is not None else IngestStats()

        self._scalings = group.scalings()
        self._column_index = {tid: i for i, tid in enumerate(group.tids)}
        self._recent: deque[tuple[int, Mapping[int, float | None]]] = deque(
            maxlen=config.model_length_limit + 2
        )
        # Block-path tail of the window, kept as (timestamps, matrix,
        # first, end) slice references and only materialized into
        # ``_recent`` when a split/join decision actually reads it.
        self._recent_pending: list[tuple[np.ndarray, np.ndarray, int, int]] = []
        self._recent_pending_rows = 0
        self._ratio_sum = 0.0
        self._ratio_count = 0
        self._subgroups: list[_SubGroup] = [
            _SubGroup(group.tids, self._make_generator(group.tids))
        ]

    # ------------------------------------------------------------------
    @property
    def subgroup_tids(self) -> list[tuple[int, ...]]:
        """Current partition of the group (diagnostics and tests)."""
        return [subgroup.tids for subgroup in self._subgroups]

    def tick(self, timestamp: int, values: Mapping[int, float | None]) -> None:
        """Ingest one sampling interval's values for the whole group.

        ``values`` maps Tid to value (``None`` or absent inside a gap).
        The mapping is kept by reference for the split/join window, so
        callers must pass a fresh mapping per tick.
        """
        if self._recent_pending:
            self._sync_recent()
        self._recent.append((timestamp, values))
        for subgroup in self._subgroups:
            subgroup.generator.tick(timestamp, values)
        if self._config.splitting_enabled:
            self._maybe_split()
            if len(self._subgroups) > 1:
                self._maybe_join()

    def tick_block(self, timestamps: np.ndarray, matrix: np.ndarray) -> None:
        """Columnar ingestion of a ``(ticks, len(group.tids))`` block.

        While the group is unsplit (the overwhelmingly common state) the
        block flows straight into the sub-generator's batch path, pausing
        at segment emissions exactly where the scalar loop would run its
        split check. Once a dynamic split is active the driver falls back
        to per-tick scalar processing — sub-generators then cover
        different column subsets and each tick can reshape the partition
        — counting the fallback in ``stats.fallback_ticks``. Emitted
        segments are bit-identical to ticking row by row.
        """
        n = len(timestamps)
        finite = np.isfinite(matrix)
        if n > 1:
            boundaries = (
                np.flatnonzero((finite[1:] != finite[:-1]).any(axis=1)) + 1
            )
        else:
            boundaries = np.empty(0, dtype=np.intp)
        group_tids = self.group.tids
        # A 1-member group never splits (and a disabled splitter never
        # consumes ratios), so emissions need no pause in those cases.
        pause = self._config.splitting_enabled and len(group_tids) >= 2
        index = self._column_index
        window = self._recent.maxlen or n
        offset = 0
        while offset < n:
            subgroups = self._subgroups
            if len(subgroups) != 1 or subgroups[0].tids != group_tids:
                self.stats.fallback_ticks += 1
                self.tick(
                    int(timestamps[offset]),
                    _BlockRow(index, matrix[offset]),
                )
                offset += 1
                continue
            cursor = int(np.searchsorted(boundaries, offset, side="right"))
            consumed = subgroups[0].generator.tick_block(
                timestamps[offset:],
                matrix[offset:],
                finite[offset:],
                pause_on_emit=pause,
                boundaries=boundaries[cursor:] - offset,
            )
            if pause:
                # Only the deque's window survives — keep a slice
                # reference to the tail and materialize rows lazily.
                first = offset + max(0, consumed - window)
                end = offset + consumed
                if first < end:
                    pending = self._recent_pending
                    pending.append((timestamps, matrix, first, end))
                    self._recent_pending_rows += end - first
                    while (
                        self._recent_pending_rows
                        - (pending[0][3] - pending[0][2])
                        >= window
                    ):
                        _, _, f0, e0 = pending.pop(0)
                        self._recent_pending_rows -= e0 - f0
                self._maybe_split()
                if len(self._subgroups) > 1:
                    self._maybe_join()
            offset += consumed

    def finish(self) -> None:
        """Flush every sub-group at end of stream."""
        for subgroup in self._subgroups:
            subgroup.generator.close()

    # ------------------------------------------------------------------
    # Splitting (Algorithm 3)
    # ------------------------------------------------------------------
    def _maybe_split(self) -> None:
        for subgroup in list(self._subgroups):
            if len(subgroup.tids) < 2:
                continue
            generator = subgroup.generator
            ratio = generator.last_emitted_ratio
            if ratio is None:
                continue
            generator.last_emitted_ratio = None
            self._ratio_sum += ratio
            self._ratio_count += 1
            average = self._ratio_sum / self._ratio_count
            threshold = average / self._config.dynamic_split_fraction
            if ratio < threshold and generator.buffered_length > 0:
                self._split(subgroup)

    def _split(self, subgroup: _SubGroup) -> None:
        window = self._pending_window(subgroup.generator)
        if not window:
            return
        partitions = self._partition_by_double_bound(subgroup.tids, window)
        if len(partitions) < 2:
            return

        subgroup.generator.abandon()
        self._subgroups.remove(subgroup)
        self.stats.splits += 1
        for tids in partitions:
            new = _SubGroup(
                tids, self._make_generator(tids), is_split=True
            )
            for timestamp, values in window:
                new.generator.tick(timestamp, values)
            self._subgroups.append(new)

    def _partition_by_double_bound(
        self,
        tids: tuple[int, ...],
        window: list[tuple[int, dict[int, float | None]]],
    ) -> list[tuple[int, ...]]:
        """Algorithm 3's grouping of buffered points.

        Greedily seeds a sub-group with the first remaining series and
        absorbs every series whose buffered values are all within the
        double error bound of the seed's. Series currently in a gap
        (no buffered values) are grouped together.
        """
        series_values: dict[int, list[float]] = {}
        for tid in tids:
            values = [
                values[tid] for _, values in window if values.get(tid) is not None
            ]
            series_values[tid] = values

        in_gap = tuple(tid for tid in tids if not series_values[tid])
        remaining = [tid for tid in tids if series_values[tid]]
        partitions: list[tuple[int, ...]] = []
        while remaining:
            seed = remaining.pop(0)
            members = [seed]
            for tid in list(remaining):
                if len(series_values[tid]) != len(series_values[seed]):
                    continue
                compatible = all(
                    within_double_bound(a, b, self._config.error_bound)
                    for a, b in zip(series_values[seed], series_values[tid])
                )
                if compatible:
                    members.append(tid)
                    remaining.remove(tid)
            partitions.append(tuple(members))
        if in_gap:
            partitions.append(in_gap)
        return partitions

    # ------------------------------------------------------------------
    # Joining (Algorithm 4)
    # ------------------------------------------------------------------
    def _maybe_join(self) -> None:
        candidates = [
            subgroup
            for subgroup in self._subgroups
            if subgroup.is_split
            and subgroup.emitted_since_split >= subgroup.join_threshold
        ]
        for candidate in candidates:
            if candidate not in self._subgroups:
                continue  # already merged into another candidate
            partner = self._find_join_partner(candidate)
            if partner is None:
                # Failed attempt: double the threshold (Algorithm 4).
                candidate.join_threshold *= 2
                candidate.emitted_since_split = 0
                continue
            self._join(candidate, partner)

    def _find_join_partner(self, candidate: _SubGroup) -> _SubGroup | None:
        representative = candidate.tids[0]
        for other in self._subgroups:
            if other is candidate:
                continue
            other_representative = other.tids[0]
            overlap = self._reverse_overlap(representative, other_representative)
            if overlap is None:
                continue
            shortest, within = overlap
            if shortest > 0 and within:
                return other
        return None

    def _reverse_overlap(
        self, tid_a: int, tid_b: int
    ) -> tuple[int, bool] | None:
        """Compare the most recent buffered points of two series.

        Returns (overlap length, all-within-double-bound) over the shared
        suffix of the recent window where both series have values.
        """
        if self._recent_pending:
            self._sync_recent()
        pairs = []
        for _, values in reversed(self._recent):
            value_a = values.get(tid_a)
            value_b = values.get(tid_b)
            if value_a is None or value_b is None:
                break
            pairs.append((value_a, value_b))
        if not pairs:
            return None
        within = all(
            within_double_bound(a, b, self._config.error_bound)
            for a, b in pairs
        )
        return len(pairs), within

    def _join(self, first: _SubGroup, second: _SubGroup) -> None:
        first.generator.close()
        second.generator.close()
        self._subgroups.remove(first)
        self._subgroups.remove(second)
        merged_tids = tuple(sorted(first.tids + second.tids))
        merged = _SubGroup(
            merged_tids,
            self._make_generator(merged_tids),
            is_split=merged_tids != self.group.tids,
        )
        self._subgroups.append(merged)
        self.stats.joins += 1

    # ------------------------------------------------------------------
    def _pending_window(
        self, generator: SegmentGenerator
    ) -> list[tuple[int, dict[int, float | None]]]:
        start = generator.buffer_start_time
        if start is None:
            return []
        if self._recent_pending:
            self._sync_recent()
        return [
            (timestamp, values)
            for timestamp, values in self._recent
            if timestamp >= start
        ]

    def _sync_recent(self) -> None:
        """Materialize pending block-path rows into the recent window."""
        index = self._column_index
        append = self._recent.append
        for timestamps, matrix, first, end in self._recent_pending:
            for j, timestamp in enumerate(timestamps[first:end].tolist()):
                append((timestamp, _BlockRow(index, matrix[first + j])))
        self._recent_pending.clear()
        self._recent_pending_rows = 0

    def _make_generator(self, tids: tuple[int, ...]) -> SegmentGenerator:
        return SegmentGenerator(
            gid=self.group.gid,
            group_tids=self.group.tids,
            subset_tids=tids,
            sampling_interval=self.group.sampling_interval,
            config=self._config,
            registry=self._registry,
            sink=self._emit,
            scalings=self._scalings,
            stats=self.stats,
        )

    def _emit(self, segment) -> None:
        self._sink(segment)
        # Attribute the emission to the owning sub-group for join pacing.
        represented = frozenset(segment.group_tids) - segment.gaps
        for subgroup in self._subgroups:
            if represented <= set(subgroup.tids):
                subgroup.emitted_since_split += 1
                break
