"""Ingestion: multi-model group compression of streaming data points."""

from .generator import SegmentGenerator, SegmentSink
from .ingestor import Ingestor, group_ticks
from .revisions import CorrectionPoint, apply_corrections
from .splitter import GroupIngestor, within_double_bound
from .stats import IngestStats, ModelUsage
from .streaming import StreamingIngestor

__all__ = [
    "SegmentGenerator",
    "SegmentSink",
    "Ingestor",
    "group_ticks",
    "CorrectionPoint",
    "apply_corrections",
    "GroupIngestor",
    "within_double_bound",
    "IngestStats",
    "ModelUsage",
    "StreamingIngestor",
]
