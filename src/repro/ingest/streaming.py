"""Streaming ingestion: the micro-batch model of the paper's architecture.

The batch :class:`~repro.ingest.ingestor.Ingestor` replays whole
pre-collected series; this module ingests *unbounded* streams the way
the deployed system does (Spark Streaming with micro-batches, Fig. 4):
data points arrive one at a time or in batches, are routed to their
group's ingestor, and become queryable as soon as their segment flushes —
which is what makes online analytics (the O-6 scenario of Fig. 13)
possible.

Typical use::

    stream = StreamingIngestor(groups, config, registry, storage)
    for point in source:             # (tid, timestamp, value)
        stream.append(*point)
    ...                              # query any time: segments are live
    stream.flush()                   # end of stream
"""

from __future__ import annotations

from typing import Iterable

from ..core.config import Configuration
from ..core.errors import IngestionError
from ..core.group import TimeSeriesGroup
from ..core.segment import SegmentGroup
from ..ingest.splitter import GroupIngestor
from ..ingest.stats import IngestStats
from ..models.registry import ModelRegistry
from ..storage.interface import Storage


class StreamingIngestor:
    """Online ingestion of data points for pre-partitioned groups.

    Data points may arrive interleaved across groups but must be
    in non-decreasing time order *per group* (the paper's setting:
    out-of-order readings are rare upstream and corrected before
    ingestion). A group's tick closes when a data point for a later
    timestamp arrives, so a missing series simply becomes a gap — no
    watermarks needed at a fixed sampling interval.
    """

    def __init__(
        self,
        groups: Iterable[TimeSeriesGroup],
        config: Configuration,
        registry: ModelRegistry,
        storage: Storage,
    ) -> None:
        self._storage = storage
        self._config = config
        self.stats = IngestStats()
        self._write_buffer: list[SegmentGroup] = []
        self._ingestors: dict[int, GroupIngestor] = {}
        self._group_of: dict[int, int] = {}
        self._open_tick: dict[int, tuple[int, dict[int, float]] | None] = {}
        for group in groups:
            ingestor = GroupIngestor(
                group, config, registry, self._buffer_write, self.stats
            )
            self._ingestors[group.gid] = ingestor
            self._open_tick[group.gid] = None
            for tid in group.tids:
                if tid in self._group_of:
                    raise IngestionError(
                        f"tid {tid} appears in more than one group"
                    )
                self._group_of[tid] = group.gid

    # ------------------------------------------------------------------
    def append(self, tid: int, timestamp: int, value: float) -> None:
        """Ingest one data point."""
        gid = self._group_of.get(tid)
        if gid is None:
            raise IngestionError(f"unknown time series id {tid}")
        open_tick = self._open_tick[gid]
        if open_tick is None:
            self._open_tick[gid] = (timestamp, {tid: value})
            return
        tick_timestamp, values = open_tick
        if timestamp < tick_timestamp:
            raise IngestionError(
                f"data point for tid {tid} at {timestamp} arrived after "
                f"tick {tick_timestamp} was opened (streams must be in "
                "time order per group)"
            )
        if timestamp == tick_timestamp:
            values[tid] = value
            return
        self._close_tick(gid)
        self._open_tick[gid] = (timestamp, {tid: value})

    def append_batch(
        self, points: Iterable[tuple[int, int, float]]
    ) -> None:
        """Ingest a micro-batch of (tid, timestamp, value) points."""
        for tid, timestamp, value in points:
            self.append(tid, timestamp, value)

    def flush(self) -> IngestStats:
        """Close all open ticks and segments; returns the statistics.

        The stream may continue afterwards (flush is also how periodic
        checkpoints would be taken), but segments will restart.
        """
        for gid in self._ingestors:
            self._close_tick(gid)
            self._ingestors[gid].finish()
        self._flush_writes()
        return self.stats

    @property
    def pending_points(self) -> int:
        """Data points received but not yet part of a closed tick."""
        return sum(
            len(tick[1])
            for tick in self._open_tick.values()
            if tick is not None
        )

    # ------------------------------------------------------------------
    def _close_tick(self, gid: int) -> None:
        open_tick = self._open_tick[gid]
        if open_tick is None:
            return
        timestamp, values = open_tick
        self._ingestors[gid].tick(timestamp, values)
        self._open_tick[gid] = None

    def _buffer_write(self, segment: SegmentGroup) -> None:
        self._write_buffer.append(segment)
        if len(self._write_buffer) >= self._config.bulk_write_size:
            self._flush_writes()

    def _flush_writes(self) -> None:
        if self._write_buffer:
            self._storage.insert_segments(self._write_buffer)
            self._write_buffer.clear()
