"""The segment generator: online multi-model group compression.

Implements the four-step ingestion loop of Section 3.2 for one (sub)group
of time series:

1. at each sampling interval the values of all present series are
   received and appended to a buffer;
2. the current model tries to fit the new value vector;
3. when it cannot, the next model in the cascade is initialised and the
   buffered values are replayed into it; when the *last* model can fit no
   more, the candidate with the best compression ratio is flushed as a
   segment;
4. the data points represented by the flushed model are removed from the
   buffer and the process restarts from the first model.

Gaps use the paper's second method (Fig. 5): whenever the set of present
series changes, the open segment is closed and the next segment records
the absent Tids in its ``gaps`` set, so every segment represents a static
number of series.

Values are cast to float32 on entry (ModelarDB stores float values), and
each series' scaling constant is applied here so correlated series with
different magnitudes compress together (Fig. 6's ``Scaling`` column).
"""

from __future__ import annotations

import struct
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.config import Configuration
from ..core.errors import IngestionError
from ..core.segment import SegmentGroup
from ..core.segment import SEGMENT_OVERHEAD_BYTES
from ..models.base import RAW_POINT_BYTES, ModelFitter
from ..models.registry import ModelRegistry
from ..models.selection import select_best
from .stats import IngestStats

SegmentSink = Callable[[SegmentGroup], None]


class _LazyFitter(ModelFitter):
    """Count-only stand-in for an always-fitting model.

    Accepts every vector up to the length limit without touching the
    values (the generator's buffer already holds them); the real fitter
    is built by :meth:`materialize` only if the model might win at flush
    time. ``parameters``/``size_bytes`` are never called on the stand-in.
    """

    def __init__(
        self,
        model_type,
        n_columns: int,
        error_bound: float,
        length_limit: int,
    ) -> None:
        super().__init__(n_columns, error_bound, length_limit)
        self._model_type = model_type

    def _try_append(self, values) -> bool:
        return True

    def _extend(self, block) -> int:
        return block.shape[0]

    def best_possible_ratio(self) -> float | None:
        """Exact upper bound on the compression ratio, if known."""
        n_values = self.length * self.n_columns
        minimum = self._model_type.minimum_size_bytes(n_values)
        if minimum is None:
            return None
        raw = n_values * RAW_POINT_BYTES
        return raw / (SEGMENT_OVERHEAD_BYTES + minimum)

    def materialize(
        self, buffer: list[tuple[int, tuple[float, ...]]]
    ) -> ModelFitter:
        """Fit the real model over the buffered prefix this covers."""
        fitter = self._model_type.fitter(
            self.n_columns, self.error_bound, self.length_limit
        )
        covered = np.asarray(
            [vector for _, vector in buffer[:self.length]], dtype=np.float64
        )
        if fitter.extend(None, covered) != self.length:  # pragma: no cover
            raise IngestionError(
                f"always-fitting model {self._model_type.name} "
                "rejected a buffered value"
            )
        return fitter

    def parameters(self) -> bytes:  # pragma: no cover - never encoded
        raise IngestionError("lazy fitters must be materialized first")


class SegmentGenerator:
    """Online segment construction for a fixed subset of a group's Tids.

    Parameters
    ----------
    gid:
        Group id recorded on emitted segments.
    group_tids:
        *All* Tids of the group in column order. Segments always list the
        full group, with non-represented Tids in ``gaps`` — this is what
        lets dynamically split sub-groups share a Gid without key
        collisions (Section 3.3).
    subset_tids:
        The Tids this generator ingests (the whole group, or one side of
        a dynamic split).
    """

    def __init__(
        self,
        gid: int,
        group_tids: Sequence[int],
        subset_tids: Sequence[int],
        sampling_interval: int,
        config: Configuration,
        registry: ModelRegistry,
        sink: SegmentSink,
        scalings: Mapping[int, float] | None = None,
        stats: IngestStats | None = None,
    ) -> None:
        subset = tuple(sorted(subset_tids))
        if not set(subset) <= set(group_tids):
            raise IngestionError("subset tids must belong to the group")
        self.gid = gid
        self.group_tids = tuple(group_tids)
        self.subset_tids = subset
        self.sampling_interval = sampling_interval
        self._config = config
        self._registry = registry
        self._sink = sink
        self._scalings = dict(scalings or {})
        self.stats = stats if stats is not None else IngestStats()

        self._present: tuple[int, ...] = ()
        self._buffer: list[tuple[int, tuple[float, ...]]] = []
        self._finished: list[tuple[int, ModelFitter]] = []
        self._active: tuple[int, ModelFitter] | None = None
        self._pending_models: list[str] = []
        self._quantizer: struct.Struct | None = None
        self._scale_cache: dict[tuple[int, ...], np.ndarray | None] = {}
        self.last_emitted_ratio: float | None = None
        #: Lifetime count of emitted segments; the block path uses it to
        #: detect that a tick's processing flushed something.
        self.segments_emitted = 0

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def tick(self, timestamp: int, values: Mapping[int, float | None]) -> None:
        """Ingest one sampling interval's values for the subset.

        ``values`` maps Tid to a value; ``None`` or a missing key marks
        the series as being in a gap at this timestamp.
        """
        present = tuple(
            tid for tid in self.subset_tids if values.get(tid) is not None
        )
        if present != self._present:
            self.close()
            self._present = present
            self._quantizer = struct.Struct(f"<{len(present)}f")
        if not present:
            return
        scalings = self._scalings
        raw = [values[tid] * scalings.get(tid, 1.0) for tid in present]
        # One struct round trip quantizes the whole vector to float32
        # (the value type ModelarDB stores) without numpy dispatch cost.
        vector = self._quantizer.unpack(self._quantizer.pack(*raw))
        self.stats.data_points += len(present)
        self._ingest_vector(timestamp, vector)

    def tick_block(
        self,
        timestamps: np.ndarray,
        matrix: np.ndarray,
        finite: np.ndarray | None = None,
        pause_on_emit: bool = False,
        boundaries: np.ndarray | None = None,
    ) -> int:
        """Columnar counterpart of :meth:`tick` over a ``(ticks, n)`` block.

        ``matrix`` columns follow ``subset_tids`` order with NaN marking
        gaps; ``finite`` may pass a precomputed ``np.isfinite(matrix)``
        and ``boundaries`` the sorted presence-change row indices (both
        derived from ``matrix`` when omitted). Consumes leading ticks and
        returns how many — all of them, unless ``pause_on_emit`` is set
        and a tick's processing emitted at least one segment, in which
        case the generator stops right after that tick (the point where
        the scalar loop's caller inspects ``last_emitted_ratio`` for
        dynamic splitting). Segments are bit-identical to feeding the
        same ticks through :meth:`tick`.
        """
        if finite is None:
            finite = np.isfinite(matrix)
        n = len(timestamps)
        if boundaries is None:
            # Presence-run boundaries: segments close whenever the set
            # of present series changes (gap method 2, Fig. 5).
            if n > 1:
                boundaries = (
                    np.flatnonzero((finite[1:] != finite[:-1]).any(axis=1))
                    + 1
                )
            else:
                boundaries = np.empty(0, dtype=np.intp)
        # When pausing at emissions, only a segment's worth of rows is
        # consumed per round — quantizing a whole run up front would be
        # thrown-away work, so cap the lookahead at a couple of segments.
        lookahead = max(2 * self._config.model_length_limit, 64)
        full_width = matrix.shape[1]
        consumed = 0
        while consumed < n:
            cursor = int(np.searchsorted(boundaries, consumed, side="right"))
            run_end = int(boundaries[cursor]) if cursor < len(boundaries) else n
            row_mask = finite[consumed]
            emitted_before = self.segments_emitted
            present = tuple(
                tid
                for tid, bit in zip(self.subset_tids, row_mask.tolist())
                if bit
            )
            if present != self._present:
                self.close()
                self._present = present
                self._quantizer = struct.Struct(f"<{len(present)}f")
            if not present:
                if pause_on_emit and self.segments_emitted > emitted_before:
                    return consumed + 1
                consumed = run_end
                continue
            if pause_on_emit:
                run_end = min(run_end, consumed + lookahead)
            block = matrix[consumed:run_end]
            if len(present) != full_width:
                block = block[:, row_mask]
            rows = self._scale_quantize(block, present)
            done = self._ingest_rows(
                timestamps[consumed:run_end],
                rows,
                pause_on_emit,
                self.segments_emitted > emitted_before,
            )
            consumed += done
            if done < run_end - (consumed - done):
                return consumed  # paused mid-run after an emission
        return consumed

    def close(self) -> None:
        """Flush everything buffered, ending the current segment run."""
        while self._buffer:
            self._flush_best()
            if self._buffer:
                self._seed_cascade()
        self._reset_cascade()

    def abandon(self) -> None:
        """Drop buffered data without emitting (used when a dynamic split
        replays the pending window into new sub-generators)."""
        self._buffer.clear()
        self._reset_cascade()

    @property
    def buffered_length(self) -> int:
        """Number of pending (unflushed) timestamps."""
        return len(self._buffer)

    @property
    def buffer_start_time(self) -> int | None:
        return self._buffer[0][0] if self._buffer else None

    # ------------------------------------------------------------------
    # Cascade mechanics
    # ------------------------------------------------------------------
    def _ingest_vector(
        self, timestamp: int, vector: tuple[float, ...]
    ) -> None:
        self._buffer.append((timestamp, vector))
        if self._active is None:
            self._seed_cascade()
            return
        _, fitter = self._active
        if fitter.append(vector):
            return
        self._finished.append(self._active)
        self._active = None
        self._try_pending_models()

    def _scale_quantize(
        self, block: np.ndarray, present: tuple[int, ...]
    ) -> np.ndarray:
        """Apply scaling constants and the float32 storage round trip.

        ``astype(float32)`` rounds exactly like the scalar path's struct
        pack, and multiplying by a scaling of 1.0 is an IEEE identity, so
        skipping the all-unity multiply changes nothing.
        """
        if present in self._scale_cache:
            scale = self._scale_cache[present]
        else:
            vector = np.array(
                [self._scalings.get(tid, 1.0) for tid in present]
            )
            scale = None if np.all(vector == 1.0) else vector
            self._scale_cache[present] = scale
        if scale is not None:
            block = block * scale
        return block.astype(np.float32).astype(np.float64)

    def _ingest_rows(
        self,
        timestamps: np.ndarray,
        rows: np.ndarray,
        pause_on_emit: bool,
        first_tick_emitted: bool,
    ) -> int:
        """Feed quantized rows of one presence run; returns rows consumed.

        Accepted prefixes go through the active fitter's batch kernel;
        every rejection or cascade restart is exactly one scalar step
        (:meth:`_ingest_vector`), so model racing, flush selection and
        stats are shared verbatim with the scalar path.
        """
        width = len(self._present)
        ts_list = timestamps.tolist()
        if pause_on_emit and first_tick_emitted:
            # The presence change at this tick already emitted: take the
            # one tick and let the caller run its split check first.
            self.stats.data_points += width
            self._ingest_vector(ts_list[0], tuple(rows[0].tolist()))
            return 1
        buffer = self._buffer
        n = len(rows)
        i = 0
        while i < n:
            emitted_before = self.segments_emitted
            if self._active is not None:
                _, fitter = self._active
                taken = fitter.extend(None, rows[i:])
                if taken:
                    # Row views: every buffer consumer treats a vector as
                    # a float64 sequence, so ndarray rows behave exactly
                    # like the scalar path's tuples.
                    buffer.extend(zip(ts_list[i:i + taken], rows[i:i + taken]))
                    i += taken
                    if i == n:
                        break  # acceptance never emits
                    # A short accept means the fitter is full or row i is
                    # deterministically rejected (state is unchanged past
                    # the prefix), so skip the re-extend straight to the
                    # scalar step.
            # Cascade restart, or the next row was rejected: one scalar step.
            self._ingest_vector(ts_list[i], tuple(rows[i].tolist()))
            i += 1
            if pause_on_emit and self.segments_emitted > emitted_before:
                break
        self.stats.data_points += i * width
        return i

    def _seed_cascade(self) -> None:
        """(Re)start the model cascade over the whole buffer."""
        self._pending_models = list(self._config.models)
        self._finished = []
        self._active = None
        self._try_pending_models()

    def _try_pending_models(self) -> None:
        """Advance through the cascade until a model covers the buffer.

        Each candidate model replays the buffered vectors from the start;
        one that covers the entire buffer becomes the active model. When
        every model has been tried, the best candidate is flushed and the
        cascade restarts over the remaining buffer (step iv).

        Always-fitting models (lossless fallbacks such as Gorilla) are
        represented by a lazy stand-in that just counts timestamps: their
        parameters are only needed if they win at flush time, so the
        expensive encode is deferred until then (and skipped when the
        model's exact best-case size cannot beat the other candidates).
        """
        buffer_matrix: np.ndarray | None = None
        while True:
            while self._pending_models:
                name = self._pending_models.pop(0)
                mid = self._registry.mid_of(name)
                model_type = self._registry.by_name(name)
                self.stats.record_fit(name)
                if model_type.always_fits:
                    fitter = _LazyFitter(
                        model_type,
                        len(self._present),
                        self._config.error_bound,
                        self._config.model_length_limit,
                    )
                else:
                    fitter = model_type.fitter(
                        len(self._present),
                        self._config.error_bound,
                        self._config.model_length_limit,
                    )
                if len(self._buffer) == 1:
                    covered_all = fitter.append(self._buffer[0][1])
                else:
                    # Replay through the batch kernel (bit-identical to
                    # appending row by row, and much faster on long
                    # buffers).
                    if buffer_matrix is None or len(buffer_matrix) != len(
                        self._buffer
                    ):
                        buffer_matrix = np.asarray(
                            [vector for _, vector in self._buffer],
                            dtype=np.float64,
                        )
                    covered_all = (
                        fitter.extend(None, buffer_matrix)
                        == len(self._buffer)
                    )
                if covered_all:
                    self._active = (mid, fitter)
                    return
                if fitter.length > 0:
                    self._finished.append((mid, fitter))
            self._flush_best()
            if not self._buffer:
                self._reset_cascade()
                return
            self._pending_models = list(self._config.models)
            self._finished = []

    def _flush_best(self) -> None:
        """Emit the candidate with the best compression ratio (step iii)."""
        candidates = list(self._finished)
        if self._active is not None:
            candidates.append(self._active)
        if not candidates:
            raise IngestionError(
                "no model could represent the buffered data points"
            )
        candidates = self._resolve_lazy(candidates)
        mid, fitter = select_best(candidates)
        length = fitter.length
        start_time = self._buffer[0][0]
        end_time = self._buffer[length - 1][0]
        segment = SegmentGroup(
            gid=self.gid,
            start_time=start_time,
            end_time=end_time,
            sampling_interval=self.sampling_interval,
            mid=mid,
            parameters=fitter.parameters(),
            gaps=frozenset(self.group_tids) - set(self._present),
            group_tids=self.group_tids,
        )
        self._sink(segment)
        self.segments_emitted += 1

        data_points = length * len(self._present)
        self.stats.record_segment(
            self._registry.by_mid(mid).name, data_points, segment.storage_bytes()
        )
        self.last_emitted_ratio = (
            data_points * RAW_POINT_BYTES / segment.storage_bytes()
        )

        del self._buffer[:length]
        self._finished = []
        self._active = None

    def _resolve_lazy(
        self, candidates: list[tuple[int, ModelFitter]]
    ) -> list[tuple[int, ModelFitter]]:
        """Materialise (or prune) lazy always-fitting candidates.

        A lazy candidate is dropped without fitting when its best-case
        compression ratio provably cannot beat an already-fitted
        candidate; otherwise the real fitter is built by replaying the
        buffered prefix it covers. Selection results are identical to
        eagerly fitting every model.
        """
        best_real_ratio = max(
            (
                fitter.compression_ratio()
                for _, fitter in candidates
                if not isinstance(fitter, _LazyFitter) and fitter.length
            ),
            default=0.0,
        )
        resolved = []
        for mid, fitter in candidates:
            if not isinstance(fitter, _LazyFitter):
                resolved.append((mid, fitter))
                continue
            if fitter.length == 0:
                continue
            upper = fitter.best_possible_ratio()
            if upper is not None and upper <= best_real_ratio:
                continue
            real = fitter.materialize(self._buffer)
            resolved.append((mid, real))
        return resolved

    def _reset_cascade(self) -> None:
        self._finished = []
        self._active = None
        self._pending_models = []
